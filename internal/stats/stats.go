// Package stats provides the random variates and aggregation helpers used by
// the InfoSleuth experiments: exponential inter-arrival and failure times,
// the bounded Gaussian distributions the paper uses for query complexity and
// coverage, and simple mean/ratio accumulators.
//
// All randomness flows through a seeded *Source so that experiments are
// reproducible run-to-run; the paper averages several runs of each
// experiment to wash out anomalous pseudo-random sequences, and the harness
// does the same by advancing the seed per run.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Source is a seeded random source for one simulation run or workload.
// The zero value is not usable; create one with NewSource.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded deterministically.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Exponential returns an exponentially distributed variate with the given
// mean. The paper uses exponential distributions for query inter-arrival
// times and for hardware time-to-failure and time-to-repair.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: exponential mean must be positive, got %v", mean))
	}
	return s.rng.ExpFloat64() * mean
}

// Normal returns a normally distributed variate.
func (s *Source) Normal(mean, stddev float64) float64 {
	return s.rng.NormFloat64()*stddev + mean
}

// BoundedGaussian samples a Gaussian and rejects samples outside [lo, hi],
// mirroring the paper's "bounded Gaussian" used for query complexity
// (bounded to stay positive) and coverage (bounded to [0, 1]).
// It panics if the bounds are inverted or the acceptance region is
// vanishingly unlikely.
func (s *Source) BoundedGaussian(mean, stddev, lo, hi float64) float64 {
	if lo >= hi {
		panic(fmt.Sprintf("stats: bounded gaussian requires lo < hi, got [%v, %v]", lo, hi))
	}
	for i := 0; i < 10000; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	panic(fmt.Sprintf("stats: bounded gaussian (mean=%v stddev=%v) never landed in [%v, %v]", mean, stddev, lo, hi))
}

// Mean is a streaming accumulator for a sample mean and variance
// (Welford's algorithm).
type Mean struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations added.
func (m *Mean) N() int { return m.n }

// Mean returns the sample mean, or 0 if no observations were added.
func (m *Mean) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Ratio accumulates a numerator and denominator and reports their quotient;
// used for the paper's multi/single response-time ratios and the Table 5/6
// reply and success percentages.
type Ratio struct {
	Num, Den float64
}

// Add accumulates into both terms.
func (r *Ratio) Add(num, den float64) {
	r.Num += num
	r.Den += den
}

// Value returns Num/Den, or 0 when the denominator is zero.
func (r *Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return r.Num / r.Den
}

// Percent returns the ratio as a percentage.
func (r *Ratio) Percent() float64 { return r.Value() * 100 }

// Median returns the median of the sample, or 0 for an empty sample.
// The input slice is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MeanOf returns the arithmetic mean of the sample, or 0 for an empty sample.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
