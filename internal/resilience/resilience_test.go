package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"infosleuth/internal/kqml"
)

// fakeClock is an injectable time source tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// noSleep records requested backoff delays without actually sleeping.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

var errBoom = errors.New("boom")

func TestBackoffBoundsAndGrowth(t *testing.T) {
	p := New(Options{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 1})
	ceilings := []time.Duration{
		10 * time.Millisecond, // retry 1
		20 * time.Millisecond, // retry 2
		40 * time.Millisecond, // retry 3
		80 * time.Millisecond, // retry 4 (capped)
		80 * time.Millisecond, // retry 5 (capped)
		80 * time.Millisecond, // retry 62 shifts past MaxDelay; also capped
	}
	for i, ceil := range ceilings {
		retry := i + 1
		if retry == len(ceilings) {
			retry = 62 // provoke the shift-overflow guard
		}
		for trial := 0; trial < 100; trial++ {
			d := p.backoff(retry)
			if d < 0 || d >= ceil {
				t.Fatalf("backoff(%d) = %v, want in [0, %v)", retry, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicBySeed(t *testing.T) {
	a := New(Options{Seed: 42})
	b := New(Options{Seed: 42})
	for i := 1; i <= 10; i++ {
		if da, db := a.backoff(i), b.backoff(i); da != db {
			t.Fatalf("retry %d: seeds diverged: %v vs %v", i, da, db)
		}
	}
	c := New(Options{Seed: 43})
	same := true
	for i := 1; i <= 10; i++ {
		if a.backoff(i) != c.backoff(i) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical backoff sequences")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var delays []time.Duration
	p := New(Options{MaxAttempts: 5, Seed: 1, sleep: noSleep(&delays)})
	attempts := 0
	err := p.Do(context.Background(), "peer", func(ctx context.Context) error {
		attempts++
		if attempts < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if len(delays) != 2 {
		t.Errorf("backoff sleeps = %d, want 2", len(delays))
	}
}

func TestDoStopsAtMaxAttempts(t *testing.T) {
	var delays []time.Duration
	p := New(Options{MaxAttempts: 3, Seed: 1, sleep: noSleep(&delays)})
	attempts := 0
	err := p.Do(context.Background(), "peer", func(ctx context.Context) error {
		attempts++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Do err = %v, want errBoom", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
}

func TestDoNonRetryableStopsImmediately(t *testing.T) {
	p := New(Options{MaxAttempts: 5, Seed: 1,
		Retryable: func(error) bool { return false }})
	attempts := 0
	err := p.Do(context.Background(), "peer", func(ctx context.Context) error {
		attempts++
		return errBoom
	})
	if !errors.Is(err, errBoom) || attempts != 1 {
		t.Fatalf("err = %v, attempts = %d; want errBoom after 1 attempt", err, attempts)
	}
}

func TestDoCanceledContextNotRetried(t *testing.T) {
	p := New(Options{MaxAttempts: 5, Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := p.Do(ctx, "peer", func(ctx context.Context) error {
		attempts++
		cancel()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("err = %v, attempts = %d; want context.Canceled after 1 attempt", err, attempts)
	}
}

func TestNilPolicyRunsOnce(t *testing.T) {
	var p *Policy
	attempts := 0
	err := p.Do(context.Background(), "peer", func(ctx context.Context) error {
		attempts++
		return errBoom
	})
	if !errors.Is(err, errBoom) || attempts != 1 {
		t.Fatalf("nil policy: err = %v, attempts = %d", err, attempts)
	}
	if p.Breaker("peer") != nil || p.BreakerOpen("peer") || p.BudgetRemaining() != -1 {
		t.Error("nil policy accessors should be inert")
	}
}

func TestDisabledPolicyRunsOnce(t *testing.T) {
	p := Disabled()
	attempts := 0
	err := p.Do(context.Background(), "peer", func(ctx context.Context) error {
		attempts++
		return errBoom
	})
	if !errors.Is(err, errBoom) || attempts != 1 {
		t.Fatalf("disabled policy: err = %v, attempts = %d", err, attempts)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	var delays []time.Duration
	p := New(Options{MaxAttempts: 2, RetryBudget: 1, Seed: 1, sleep: noSleep(&delays)})
	fail := func(ctx context.Context) error { return errBoom }

	// First call spends the only token on its retry.
	if err := p.Do(context.Background(), "peer", fail); !errors.Is(err, errBoom) {
		t.Fatalf("first call err = %v", err)
	}
	if got := p.BudgetRemaining(); got != 0 {
		t.Fatalf("budget after first call = %d, want 0", got)
	}
	// Second call cannot afford a retry.
	err := p.Do(context.Background(), "peer", fail)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second call err = %v, want ErrBudgetExhausted", err)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("budget error should wrap the attempt error, got %v", err)
	}
}

func TestRetryBudgetRefillsOnSuccess(t *testing.T) {
	p := New(Options{MaxAttempts: 2, RetryBudget: 2, BudgetRefill: 0.5, Seed: 1,
		sleep: func(ctx context.Context, d time.Duration) error { return nil }})
	fail := func(ctx context.Context) error { return errBoom }
	ok := func(ctx context.Context) error { return nil }

	p.Do(context.Background(), "peer", fail) // spend 1
	p.Do(context.Background(), "peer", fail) // spend 1 -> 0 tokens
	if got := p.BudgetRemaining(); got != 0 {
		t.Fatalf("budget = %d, want 0", got)
	}
	p.Do(context.Background(), "peer", ok)
	p.Do(context.Background(), "peer", ok) // two successes * 0.5 = 1 token
	if got := p.BudgetRemaining(); got != 1 {
		t.Fatalf("budget after refill = %d, want 1", got)
	}
	// Refill caps at RetryBudget.
	for i := 0; i < 10; i++ {
		p.Do(context.Background(), "peer", ok)
	}
	if got := p.BudgetRemaining(); got != 2 {
		t.Fatalf("budget after many successes = %d, want cap 2", got)
	}
}

func TestBreakerFSM(t *testing.T) {
	clock := newFakeClock()
	b := newBreaker(3, time.Second, clock.Now)

	if b.Snapshot() != StateClosed {
		t.Fatal("new breaker not closed")
	}
	b.OnFailure()
	b.OnFailure()
	if b.Snapshot() != StateClosed {
		t.Fatal("breaker tripped below threshold")
	}
	b.OnFailure() // third consecutive failure trips it
	if b.Snapshot() != StateOpen {
		t.Fatal("breaker did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}

	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.Snapshot() != StateHalfOpen {
		t.Fatal("breaker not half-open after probe admission")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens immediately.
	b.OnFailure()
	if b.Snapshot() != StateOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the circuit")
	}

	// Successful probe closes and resets the failure run.
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.OnSuccess()
	if b.Snapshot() != StateClosed {
		t.Fatal("successful probe did not close the circuit")
	}
	b.OnFailure()
	b.OnFailure()
	if b.Snapshot() != StateClosed {
		t.Fatal("failure run not reset by success")
	}
}

func TestDoBreakerRejectsAndProbes(t *testing.T) {
	clock := newFakeClock()
	var delays []time.Duration
	p := New(Options{
		MaxAttempts: 1, BreakerThreshold: 2, BreakerCooldown: time.Second,
		Seed: 1, now: clock.Now, sleep: noSleep(&delays),
	})
	fail := func(ctx context.Context) error { return errBoom }
	attempts := 0
	counted := func(ctx context.Context) error { attempts++; return nil }

	p.Do(context.Background(), "peer", fail)
	p.Do(context.Background(), "peer", fail) // trips the breaker
	err := p.Do(context.Background(), "peer", counted)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if attempts != 0 {
		t.Fatal("open breaker still invoked the op")
	}
	if !p.BreakerOpen("peer") {
		t.Fatal("BreakerOpen = false while open inside cooldown")
	}
	// Other peers are unaffected.
	if err := p.Do(context.Background(), "other", counted); err != nil || attempts != 1 {
		t.Fatalf("independent peer blocked: err=%v attempts=%d", err, attempts)
	}

	// After the cooldown the policy reports probe-due, admits one call, and
	// a success closes the circuit.
	clock.Advance(time.Second)
	if p.BreakerOpen("peer") {
		t.Fatal("BreakerOpen = true once a probe is due")
	}
	if err := p.Do(context.Background(), "peer", counted); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if p.Breaker("peer").Snapshot() != StateClosed {
		t.Fatal("successful probe did not close the circuit")
	}
}

func TestDeadlineSlicedAcrossAttempts(t *testing.T) {
	p := New(Options{MaxAttempts: 2, Seed: 1,
		sleep: func(ctx context.Context, d time.Duration) error { return nil }})
	total := 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), total)
	defer cancel()

	var slices []time.Duration
	start := time.Now()
	p.Do(ctx, "peer", func(actx context.Context) error {
		dl, ok := actx.Deadline()
		if !ok {
			t.Fatal("attempt context lost its deadline")
		}
		slices = append(slices, dl.Sub(start))
		return errBoom
	})
	if len(slices) != 2 {
		t.Fatalf("attempts = %d, want 2", len(slices))
	}
	// First attempt gets about half the budget; the last attempt gets the
	// whole remainder. Generous slack absorbs scheduler noise.
	if slices[0] > total/2+50*time.Millisecond {
		t.Errorf("first attempt slice %v exceeds half the %v budget", slices[0], total)
	}
	if slices[1] <= slices[0] {
		t.Errorf("final attempt deadline %v not later than first slice %v", slices[1], slices[0])
	}
}

func TestWrapCallRetriesTransportErrors(t *testing.T) {
	var delays []time.Duration
	p := New(Options{MaxAttempts: 3, Seed: 1, sleep: noSleep(&delays)})
	calls := 0
	want := &kqml.Message{Performative: kqml.Tell, Sender: "peer"}
	next := func(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
		calls++
		if calls < 3 {
			return nil, errBoom
		}
		return want, nil
	}
	reply, err := p.WrapCall(next)(context.Background(), "peer", &kqml.Message{Performative: kqml.AskAll})
	if err != nil {
		t.Fatalf("WrapCall: %v", err)
	}
	if reply != want || calls != 3 {
		t.Fatalf("reply = %v after %d calls, want scripted reply after 3", reply, calls)
	}
}

func TestWrapCallSorryIsSuccess(t *testing.T) {
	p := New(Options{MaxAttempts: 3, BreakerThreshold: 1, Seed: 1})
	calls := 0
	sorry := &kqml.Message{Performative: kqml.Sorry, Sender: "peer"}
	next := func(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
		calls++
		return sorry, nil
	}
	reply, err := p.WrapCall(next)(context.Background(), "peer", &kqml.Message{Performative: kqml.AskAll})
	if err != nil || reply != sorry {
		t.Fatalf("sorry reply: err=%v reply=%v", err, reply)
	}
	if calls != 1 {
		t.Errorf("sorry reply retried: %d calls", calls)
	}
	if p.BreakerOpen("peer") {
		t.Error("sorry reply tripped the breaker")
	}
}

func TestWrapCallNilPolicyPassthrough(t *testing.T) {
	var p *Policy
	next := func(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
		return nil, errBoom
	}
	wrapped := p.WrapCall(next)
	if _, err := wrapped(context.Background(), "peer", nil); !errors.Is(err, errBoom) {
		t.Fatalf("nil policy wrap err = %v", err)
	}
}
