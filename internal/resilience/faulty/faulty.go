// Package faulty is a deterministic fault-injection transport for
// resilience tests: it wraps any transport.Transport and applies a
// per-peer script of faults — drop (peer unreachable), delay, custom
// error, or hang (block until the caller gives up) — to outgoing calls,
// one scripted step per call, passing cleanly once the script is
// exhausted. A seeded chaos mode scripts faults randomly but
// reproducibly.
//
// Listening is always passed through untouched: the faults model the
// *network and remote process*, not the local agent.
package faulty

import (
	"context"
	"fmt"
	"sync"
	"time"

	"infosleuth/internal/kqml"
	"infosleuth/internal/stats"
	"infosleuth/internal/transport"
)

// Step is one scripted fault applied to a single call.
type Step struct {
	// Wait delays the call before acting (Pass and Fail steps) — the
	// slow-peer case.
	Wait time.Duration
	// Err, when non-nil, fails the call with this error after Wait.
	Err error
	// HangStep blocks until the call's context is done, then returns its
	// error — the hung-remote case.
	HangStep bool
}

// Pass is a step that lets the call through untouched.
func Pass() Step { return Step{} }

// Drop fails one call as if the peer were unreachable.
func Drop() Step { return Step{Err: fmt.Errorf("%w (injected)", transport.ErrUnreachable)} }

// Fail fails one call with a custom error.
func Fail(err error) Step { return Step{Err: err} }

// Delay lets one call through after sleeping d.
func Delay(d time.Duration) Step { return Step{Wait: d} }

// Hang blocks one call until its context is done.
func Hang() Step { return Step{HangStep: true} }

// Transport wraps an inner transport with scripted faults. The zero value
// is not usable; create one with Wrap. It is safe for concurrent use.
type Transport struct {
	inner transport.Transport

	mu      sync.Mutex
	scripts map[string][]Step
	calls   map[string]int
	faults  map[string]int
	chaos   *chaos
}

// chaos is the seeded random fault generator.
type chaos struct {
	rng      *stats.Source
	dropProb float64
	hangProb float64
	maxDelay time.Duration
	match    func(addr string) bool
}

// Wrap returns a fault-injecting view of inner.
func Wrap(inner transport.Transport) *Transport {
	return &Transport{
		inner:   inner,
		scripts: make(map[string][]Step),
		calls:   make(map[string]int),
		faults:  make(map[string]int),
	}
}

// Script appends steps to the peer's fault script; each outgoing call to
// addr consumes one step in order, and calls beyond the script pass
// through.
func (t *Transport) Script(addr string, steps ...Step) {
	t.mu.Lock()
	t.scripts[addr] = append(t.scripts[addr], steps...)
	t.mu.Unlock()
}

// Chaos switches the transport into seeded random-fault mode for peers
// matching match (nil matches every peer): each call draws from the seeded
// source — dropProb of failing as unreachable, hangProb of hanging, and
// otherwise a uniform delay in [0, maxDelay). Explicit scripts still take
// precedence. The same seed and call sequence reproduces the same faults.
func (t *Transport) Chaos(seed int64, dropProb, hangProb float64, maxDelay time.Duration, match func(addr string) bool) {
	t.mu.Lock()
	t.chaos = &chaos{
		rng:      stats.NewSource(seed),
		dropProb: dropProb,
		hangProb: hangProb,
		maxDelay: maxDelay,
		match:    match,
	}
	t.mu.Unlock()
}

// Reset clears all scripts, chaos mode, and counters.
func (t *Transport) Reset() {
	t.mu.Lock()
	t.scripts = make(map[string][]Step)
	t.calls = make(map[string]int)
	t.faults = make(map[string]int)
	t.chaos = nil
	t.mu.Unlock()
}

// Calls returns how many calls were issued to addr (faulted ones
// included).
func (t *Transport) Calls(addr string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls[addr]
}

// Faults returns how many calls to addr were faulted (dropped, failed,
// hung, or delayed).
func (t *Transport) Faults(addr string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults[addr]
}

// Listen passes through to the inner transport.
func (t *Transport) Listen(addr string, h transport.Handler) (transport.Listener, error) {
	return t.inner.Listen(addr, h)
}

// next pops the peer's next scripted step, falling back to chaos mode.
func (t *Transport) next(addr string) Step {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls[addr]++
	if s := t.scripts[addr]; len(s) > 0 {
		step := s[0]
		t.scripts[addr] = s[1:]
		if step != (Step{}) {
			t.faults[addr]++
		}
		return step
	}
	if c := t.chaos; c != nil && (c.match == nil || c.match(addr)) {
		switch f := c.rng.Float64(); {
		case f < c.dropProb:
			t.faults[addr]++
			return Drop()
		case f < c.dropProb+c.hangProb:
			t.faults[addr]++
			return Hang()
		case c.maxDelay > 0:
			d := time.Duration(c.rng.Float64() * float64(c.maxDelay))
			if d > 0 {
				t.faults[addr]++
			}
			return Delay(d)
		}
	}
	return Step{}
}

// Call applies the peer's next scripted fault, then (for passing steps)
// delegates to the inner transport.
func (t *Transport) Call(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
	step := t.next(addr)
	if step.HangStep {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if step.Wait > 0 {
		timer := time.NewTimer(step.Wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
	if step.Err != nil {
		return nil, step.Err
	}
	return t.inner.Call(ctx, addr, msg)
}
