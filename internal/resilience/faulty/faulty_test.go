package faulty

import (
	"context"
	"errors"
	"testing"
	"time"

	"infosleuth/internal/kqml"
	"infosleuth/internal/transport"
)

// echoListener starts an in-proc peer at addr that echoes a tell reply.
func echoListener(t *testing.T, inner transport.Transport, addr string) {
	t.Helper()
	l, err := inner.Listen(addr, func(msg *kqml.Message) *kqml.Message {
		return &kqml.Message{Performative: kqml.Tell, Sender: addr, InReplyTo: msg.ReplyWith}
	})
	if err != nil {
		t.Fatalf("Listen(%s): %v", addr, err)
	}
	t.Cleanup(func() { l.Close() })
}

func TestScriptedFaultsInOrder(t *testing.T) {
	inner := transport.NewInProc()
	echoListener(t, inner, "inproc://peer")
	ft := Wrap(inner)
	custom := errors.New("scripted failure")
	ft.Script("inproc://peer", Drop(), Fail(custom), Pass())

	ctx := context.Background()
	msg := &kqml.Message{Performative: kqml.AskAll, ReplyWith: "q1"}

	if _, err := ft.Call(ctx, "inproc://peer", msg); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("step 1 err = %v, want ErrUnreachable", err)
	}
	if _, err := ft.Call(ctx, "inproc://peer", msg); !errors.Is(err, custom) {
		t.Fatalf("step 2 err = %v, want scripted error", err)
	}
	reply, err := ft.Call(ctx, "inproc://peer", msg)
	if err != nil || reply == nil || reply.Performative != kqml.Tell {
		t.Fatalf("step 3 reply = %v, err = %v; want tell", reply, err)
	}
	// Script exhausted: further calls pass through.
	if _, err := ft.Call(ctx, "inproc://peer", msg); err != nil {
		t.Fatalf("post-script call: %v", err)
	}
	if got := ft.Calls("inproc://peer"); got != 4 {
		t.Errorf("Calls = %d, want 4", got)
	}
	if got := ft.Faults("inproc://peer"); got != 2 {
		t.Errorf("Faults = %d, want 2", got)
	}
}

func TestScriptsArePerPeer(t *testing.T) {
	inner := transport.NewInProc()
	echoListener(t, inner, "inproc://a")
	echoListener(t, inner, "inproc://b")
	ft := Wrap(inner)
	ft.Script("inproc://a", Drop())

	if _, err := ft.Call(context.Background(), "inproc://b", &kqml.Message{Performative: kqml.Ping}); err != nil {
		t.Fatalf("unscripted peer faulted: %v", err)
	}
	if _, err := ft.Call(context.Background(), "inproc://a", &kqml.Message{Performative: kqml.Ping}); err == nil {
		t.Fatal("scripted peer passed")
	}
}

func TestHangBlocksUntilContextDone(t *testing.T) {
	inner := transport.NewInProc()
	echoListener(t, inner, "inproc://peer")
	ft := Wrap(inner)
	ft.Script("inproc://peer", Hang())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ft.Call(ctx, "inproc://peer", &kqml.Message{Performative: kqml.Ping})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("hang returned after %v, before the deadline", elapsed)
	}
}

func TestDelayWaitsThenPasses(t *testing.T) {
	inner := transport.NewInProc()
	echoListener(t, inner, "inproc://peer")
	ft := Wrap(inner)
	ft.Script("inproc://peer", Delay(20*time.Millisecond))

	start := time.Now()
	reply, err := ft.Call(context.Background(), "inproc://peer", &kqml.Message{Performative: kqml.Ping})
	if err != nil || reply == nil {
		t.Fatalf("delayed call: reply=%v err=%v", reply, err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("delayed call returned after %v, want >= 20ms", elapsed)
	}
	// A delayed call is abandoned when the context expires first.
	ft.Script("inproc://peer", Delay(time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := ft.Call(ctx, "inproc://peer", &kqml.Message{Performative: kqml.Ping}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("long delay err = %v, want DeadlineExceeded", err)
	}
}

func TestChaosDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []bool {
		inner := transport.NewInProc()
		echoListener(t, inner, "inproc://peer")
		ft := Wrap(inner)
		ft.Chaos(seed, 0.5, 0, 0, nil)
		var outcomes []bool
		for i := 0; i < 40; i++ {
			_, err := ft.Call(context.Background(), "inproc://peer", &kqml.Message{Performative: kqml.Ping})
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged across identical seeds", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical chaos outcomes")
	}
}

func TestChaosMatchScopesFaults(t *testing.T) {
	inner := transport.NewInProc()
	echoListener(t, inner, "inproc://res-1")
	echoListener(t, inner, "inproc://broker")
	ft := Wrap(inner)
	ft.Chaos(1, 1.0, 0, 0, func(addr string) bool { return addr == "inproc://res-1" })

	if _, err := ft.Call(context.Background(), "inproc://broker", &kqml.Message{Performative: kqml.Ping}); err != nil {
		t.Fatalf("unmatched peer faulted: %v", err)
	}
	if _, err := ft.Call(context.Background(), "inproc://res-1", &kqml.Message{Performative: kqml.Ping}); err == nil {
		t.Fatal("matched peer passed despite dropProb=1")
	}
}

func TestResetClearsState(t *testing.T) {
	inner := transport.NewInProc()
	echoListener(t, inner, "inproc://peer")
	ft := Wrap(inner)
	ft.Script("inproc://peer", Drop())
	ft.Chaos(1, 1.0, 0, 0, nil)
	ft.Reset()

	if _, err := ft.Call(context.Background(), "inproc://peer", &kqml.Message{Performative: kqml.Ping}); err != nil {
		t.Fatalf("post-reset call faulted: %v", err)
	}
	if ft.Calls("inproc://peer") != 1 || ft.Faults("inproc://peer") != 0 {
		t.Errorf("post-reset counters: calls=%d faults=%d", ft.Calls("inproc://peer"), ft.Faults("inproc://peer"))
	}
}
