package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker state.
type State int

// Breaker states.
const (
	// StateClosed lets calls through, counting consecutive failures.
	StateClosed State = iota
	// StateOpen rejects calls until the cooldown elapses.
	StateOpen
	// StateHalfOpen lets exactly one probe through; its outcome decides
	// whether the circuit closes again or re-opens.
	StateHalfOpen
)

// String renders the state for logs and metric labels.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is one peer's circuit breaker: it trips open after a configured
// run of consecutive failures, rejects calls for a cooldown, then admits a
// single half-open probe whose outcome closes or re-opens the circuit —
// the client-side mirror of the broker's Section 4.2.2 liveness pings. All
// methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    State
	failures int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a call may proceed, transitioning an open circuit
// to half-open (and claiming the probe slot) once the cooldown has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(StateHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// OnSuccess records a successful call: a half-open probe (or any success)
// closes the circuit and clears the failure run.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != StateClosed {
		b.setState(StateClosed)
	}
}

// OnFailure records a failed call: a failed half-open probe re-opens the
// circuit immediately; in the closed state the consecutive-failure run
// grows and trips the circuit at the threshold.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.setState(StateOpen)
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.setState(StateOpen)
		}
	default: // already open (a straggler finishing after the trip)
	}
}

// Snapshot returns the current state without side effects.
func (b *Breaker) Snapshot() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// probeDue reports whether an open circuit's cooldown has elapsed (a probe
// would be admitted); used by BreakerOpen to avoid consuming the probe slot
// on a pure inspection.
func (b *Breaker) probeDue() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cooldown
}

// setState transitions and counts; callers hold b.mu.
func (b *Breaker) setState(s State) {
	b.state = s
	mBreakerState.With(s.String()).Inc()
}
