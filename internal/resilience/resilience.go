// Package resilience is the fault-tolerance layer of the reproduction: the
// paper's community is explicitly *dynamic* — "agents appear, die, and
// re-advertise" (Sections 3-4) — and brokers compensate with redundant
// advertisements and liveness pings. This package supplies the client-side
// half of that story as a composable call policy:
//
//   - exponential backoff with full jitter between retry attempts,
//   - a token-bucket retry budget so a wide outage cannot amplify load
//     (retries spend tokens, successes slowly refill them),
//   - per-peer circuit breakers with half-open probing, so a dead broker or
//     resource agent is skipped instead of timing out every caller, and
//   - deadline-aware attempt slicing: a context deadline is divided across
//     the remaining attempts, so one hung peer cannot consume the entire
//     call budget before the first retry fires.
//
// A Policy wraps any transport-shaped call function (see WrapCall); agents
// install one through agent.WithCallPolicy. A nil *Policy is valid
// everywhere and means "call once, no bookkeeping" — the paper-faithful
// configuration the Section 5 experiment harness pins.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"infosleuth/internal/kqml"
	"infosleuth/internal/stats"
	"infosleuth/internal/telemetry"
)

// ErrBreakerOpen reports that the peer's circuit breaker is open and the
// call was rejected without touching the transport.
var ErrBreakerOpen = errors.New("resilience: circuit open")

// ErrBudgetExhausted reports that the retry budget is spent: the first
// attempt's error is returned wrapped, and no retry was issued.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// Options configures a Policy.
type Options struct {
	// MaxAttempts is the total number of attempts per call (first try
	// included). Values <= 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff base; attempt n waits a full-jittered
	// random duration in [0, min(MaxDelay, BaseDelay*2^(n-1))).
	// Zero means 25 ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; zero means 2 s.
	MaxDelay time.Duration
	// RetryBudget caps the token bucket that retries spend from; each
	// retry costs one token and each successful call refills
	// BudgetRefill tokens (capped at RetryBudget). Zero means 64;
	// negative disables the budget (unlimited retries).
	RetryBudget int
	// BudgetRefill is the fraction of a token a success earns back;
	// zero means 0.1 (ten successes buy one retry).
	BudgetRefill float64
	// BreakerThreshold is the number of consecutive failures that opens a
	// peer's circuit. Zero disables circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// letting a single half-open probe through; zero means 5 s.
	BreakerCooldown time.Duration
	// Retryable classifies errors; nil uses DefaultRetryable.
	Retryable func(error) bool
	// Seed seeds the jitter source (deterministic tests); zero derives a
	// seed from the wall clock.
	Seed int64
	// now and sleep are injectable for tests.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

// Policy is a stateful resilience policy shared by every call an agent
// makes: one retry budget and one breaker per peer address. All methods are
// safe for concurrent use, and all methods accept a nil receiver (meaning
// "no policy": a single attempt, no breakers).
type Policy struct {
	opt Options

	mu      sync.Mutex
	rng     *stats.Source
	tokens  float64
	breaker map[string]*Breaker
}

// New builds a Policy from options, applying defaults.
func New(opt Options) *Policy {
	if opt.MaxAttempts < 1 {
		opt.MaxAttempts = 1
	}
	if opt.BaseDelay == 0 {
		opt.BaseDelay = 25 * time.Millisecond
	}
	if opt.MaxDelay == 0 {
		opt.MaxDelay = 2 * time.Second
	}
	if opt.RetryBudget == 0 {
		opt.RetryBudget = 64
	}
	if opt.BudgetRefill == 0 {
		opt.BudgetRefill = 0.1
	}
	if opt.BreakerCooldown == 0 {
		opt.BreakerCooldown = 5 * time.Second
	}
	if opt.Retryable == nil {
		opt.Retryable = DefaultRetryable
	}
	if opt.Seed == 0 {
		opt.Seed = time.Now().UnixNano()
	}
	if opt.now == nil {
		opt.now = time.Now
	}
	if opt.sleep == nil {
		opt.sleep = sleepCtx
	}
	return &Policy{
		opt:     opt,
		rng:     stats.NewSource(opt.Seed),
		tokens:  float64(opt.RetryBudget),
		breaker: make(map[string]*Breaker),
	}
}

// Disabled returns a policy that attempts each call exactly once with no
// breakers — behaviorally identical to a nil policy, but exercising the
// policy plumbing (benchmark guardrails install it to price the wrapper).
func Disabled() *Policy {
	return New(Options{MaxAttempts: 1, RetryBudget: -1})
}

// DefaultRetryable treats every error as retryable except explicit
// cancellation: a cancelled attempt means the caller gave up, while a
// deadline blown by one hung peer still leaves the sliced retry its share
// of the budget (Do additionally stops whenever the parent context itself
// is done).
func DefaultRetryable(err error) bool {
	return !errors.Is(err, context.Canceled)
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Breaker returns the peer's circuit breaker, creating it on first use;
// nil when the policy is nil or breaking is disabled.
func (p *Policy) Breaker(peer string) *Breaker {
	if p == nil || p.opt.BreakerThreshold <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.breaker[peer]
	if !ok {
		b = newBreaker(p.opt.BreakerThreshold, p.opt.BreakerCooldown, p.opt.now)
		p.breaker[peer] = b
	}
	return b
}

// BreakerOpen reports whether the peer's circuit is open right now (and not
// yet due for a half-open probe) — the check broker forwarding uses to skip
// a peer without consuming the probe slot.
func (p *Policy) BreakerOpen(peer string) bool {
	if b := p.Breaker(peer); b != nil {
		return b.Snapshot() == StateOpen && !b.probeDue()
	}
	return false
}

// BreakerState is one peer's circuit state in a policy snapshot (see
// BreakerStates); the fleet monitor-snapshot conversation carries these.
type BreakerState struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
}

// BreakerStates returns every known peer's circuit state, sorted by peer;
// nil when the policy is nil or circuit breaking is disabled.
func (p *Policy) BreakerStates() []BreakerState {
	if p == nil || p.opt.BreakerThreshold <= 0 {
		return nil
	}
	p.mu.Lock()
	peers := make([]string, 0, len(p.breaker))
	for peer := range p.breaker {
		peers = append(peers, peer)
	}
	breakers := make([]*Breaker, 0, len(peers))
	sort.Strings(peers)
	for _, peer := range peers {
		breakers = append(breakers, p.breaker[peer])
	}
	p.mu.Unlock()
	out := make([]BreakerState, len(peers))
	for i, peer := range peers {
		out[i] = BreakerState{Peer: peer, State: breakers[i].Snapshot().String()}
	}
	return out
}

// BudgetRemaining returns the retry tokens left (whole tokens); -1 when the
// budget is unlimited or the policy is nil.
func (p *Policy) BudgetRemaining() int {
	if p == nil || p.opt.RetryBudget < 0 {
		return -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.tokens)
}

// spendRetry takes one retry token; false when the bucket is empty.
func (p *Policy) spendRetry() bool {
	if p.opt.RetryBudget < 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tokens < 1 {
		return false
	}
	p.tokens--
	return true
}

// refund credits a success back into the retry budget.
func (p *Policy) refund() {
	if p.opt.RetryBudget < 0 {
		return
	}
	p.mu.Lock()
	if p.tokens += p.opt.BudgetRefill; p.tokens > float64(p.opt.RetryBudget) {
		p.tokens = float64(p.opt.RetryBudget)
	}
	p.mu.Unlock()
}

// backoff returns the full-jittered delay before the given retry (retry 1
// is the wait between the first and second attempts).
func (p *Policy) backoff(retry int) time.Duration {
	ceil := p.opt.BaseDelay << uint(retry-1)
	if ceil > p.opt.MaxDelay || ceil <= 0 {
		ceil = p.opt.MaxDelay
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.rng.Float64() * float64(ceil))
}

// Do runs op against the named peer under the policy: breaker admission,
// up to MaxAttempts attempts with full-jitter backoff, budget-gated
// retries, and — when the context has a deadline — per-attempt deadline
// slices so early attempts cannot starve later ones. A nil policy runs op
// exactly once.
//
// On a traced context (telemetry.WithTraceID) every retry records a
// retry.attempt span, so the flight recorder shows where a conversation's
// latency went.
func (p *Policy) Do(ctx context.Context, peer string, op func(ctx context.Context) error) error {
	if p == nil {
		return op(ctx)
	}
	br := p.Breaker(peer)
	if br != nil && !br.Allow() {
		mBreakerRejects.Inc()
		return fmt.Errorf("%w: %s", ErrBreakerOpen, peer)
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = p.attempt(ctx, attempt, op)
		if err == nil {
			if br != nil {
				br.OnSuccess()
			}
			p.refund()
			return nil
		}
		if br != nil {
			br.OnFailure()
		}
		if attempt >= p.opt.MaxAttempts || ctx.Err() != nil || !p.opt.Retryable(err) {
			return err
		}
		if !p.spendRetry() {
			return fmt.Errorf("%w (peer %s): %w", ErrBudgetExhausted, peer, err)
		}
		if serr := p.opt.sleep(ctx, p.backoff(attempt)); serr != nil {
			return err
		}
		// Re-admit through the breaker: the failed attempt may have
		// opened it, in which case further retries here are pointless.
		if br != nil && !br.Allow() {
			mBreakerRejects.Inc()
			return fmt.Errorf("%w: %s (after %d attempts: %v)", ErrBreakerOpen, peer, attempt, err)
		}
		mRetries.Inc()
		recordRetrySpan(ctx, peer, attempt+1)
	}
}

// attempt runs op once inside its deadline slice: with a context deadline
// and n attempts remaining, this attempt gets remaining/n of it, so a hung
// peer leaves the retries their share.
func (p *Policy) attempt(ctx context.Context, attempt int, op func(ctx context.Context) error) error {
	left := p.opt.MaxAttempts - attempt + 1
	deadline, ok := ctx.Deadline()
	if !ok || left <= 1 {
		return op(ctx)
	}
	slice := deadline.Sub(p.opt.now()) / time.Duration(left)
	if slice <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, slice)
	defer cancel()
	return op(actx)
}

// recordRetrySpan emits the retry.attempt span for traced conversations.
func recordRetrySpan(ctx context.Context, peer string, attempt int) {
	traceID := telemetry.TraceIDFrom(ctx)
	if traceID == "" || !telemetry.SpanRecorderActive() {
		return
	}
	telemetry.RecordSpan(telemetry.Span{
		TraceID:       traceID,
		Agent:         peer,
		Op:            telemetry.OpRetryAttempt,
		StartUnixNano: time.Now().UnixNano(),
		Err:           fmt.Sprintf("attempt %d", attempt),
	})
}

// CallFunc is the transport-call shape policies wrap: deliver one message,
// get one reply.
type CallFunc func(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error)

// WrapCall applies the policy around a call function, keyed by peer
// address. A sorry/error reply is a *successful* call at this layer — the
// peer is alive and answered — so only transport-level failures trip
// breakers and trigger retries. A nil policy returns next unchanged.
func (p *Policy) WrapCall(next CallFunc) CallFunc {
	if p == nil {
		return next
	}
	return func(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
		var reply *kqml.Message
		err := p.Do(ctx, addr, func(ctx context.Context) error {
			r, err := next(ctx, addr, msg)
			if err != nil {
				return err
			}
			reply = r
			return nil
		})
		if err != nil {
			return nil, err
		}
		return reply, nil
	}
}
