package resilience

import "infosleuth/internal/telemetry"

// Resilience metrics. The retry and breaker counters are recorded by the
// policy itself; the failover and partial-result counters are owned here
// but recorded by the MRQ assembly path (RecordFailover /
// RecordPartialResult), so one metric family covers the whole degradation
// story regardless of which layer absorbed the fault.
var (
	mRetries = telemetry.Default.Counter("infosleuth_resilience_retries_total",
		"Retry attempts issued after a failed call (first attempts are not counted).")
	mBreakerState = telemetry.Default.CounterVec("infosleuth_resilience_breaker_state_total",
		"Circuit breaker state transitions, by state entered.", "state")
	mBreakerRejects = telemetry.Default.Counter("infosleuth_resilience_breaker_rejects_total",
		"Calls rejected without touching the transport because the peer's circuit was open.")
	mFailovers = telemetry.Default.Counter("infosleuth_resilience_failovers_total",
		"Fragment fetches recovered through a redundant advertisement after the primary resource failed.")
	mPartials = telemetry.Default.Counter("infosleuth_resilience_partial_results_total",
		"Multiresource queries answered with a partial result (one or more fragments lost with no covering replica).")
)

// RecordFailover counts one fragment recovered via a redundant
// advertisement.
func RecordFailover() { mFailovers.Inc() }

// RecordPartialResult counts one query answered partially.
func RecordPartialResult() { mPartials.Inc() }

// Stats is a point-in-time snapshot of the resilience counters; tests and
// benchmarks diff two snapshots.
type Stats struct {
	Retries        int64
	BreakerRejects int64
	Failovers      int64
	PartialResults int64
}

// SnapshotStats reads the resilience counters.
func SnapshotStats() Stats {
	return Stats{
		Retries:        mRetries.Value(),
		BreakerRejects: mBreakerRejects.Value(),
		Failovers:      mFailovers.Value(),
		PartialResults: mPartials.Value(),
	}
}
