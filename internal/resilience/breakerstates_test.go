package resilience

import (
	"context"
	"reflect"
	"testing"
	"time"
)

func TestBreakerStates(t *testing.T) {
	// Nil policy and breaking-disabled policy both export no states.
	var nilPolicy *Policy
	if got := nilPolicy.BreakerStates(); got != nil {
		t.Fatalf("nil policy states %v", got)
	}
	if got := New(Options{MaxAttempts: 1, Seed: 1}).BreakerStates(); got != nil {
		t.Fatalf("breaking-disabled policy states %v", got)
	}

	clock := newFakeClock()
	var delays []time.Duration
	p := New(Options{
		MaxAttempts: 1, BreakerThreshold: 2, BreakerCooldown: time.Second,
		Seed: 1, now: clock.Now, sleep: noSleep(&delays),
	})
	fail := func(ctx context.Context) error { return errBoom }
	ok := func(ctx context.Context) error { return nil }

	// zebra succeeds, alpha trips: the export is sorted by peer and shows
	// one circuit per state.
	p.Do(context.Background(), "zebra", ok)
	p.Do(context.Background(), "alpha", fail)
	p.Do(context.Background(), "alpha", fail)

	want := []BreakerState{{Peer: "alpha", State: "open"}, {Peer: "zebra", State: "closed"}}
	if got := p.BreakerStates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("states %v, want %v", got, want)
	}

	// After the cooldown a successful probe closes alpha again.
	clock.Advance(2 * time.Second)
	if err := p.Do(context.Background(), "alpha", ok); err != nil {
		t.Fatal(err)
	}
	for _, s := range p.BreakerStates() {
		if s.State != "closed" {
			t.Fatalf("peer %s still %s after recovery", s.Peer, s.State)
		}
	}
}
