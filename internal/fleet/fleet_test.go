package fleet_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"infosleuth/internal/community"
	"infosleuth/internal/fleet"
	"infosleuth/internal/ontology"
	"infosleuth/internal/relational"
)

// buildCommunity wires brokers + one resource + an MRQ + a user on an
// in-process transport.
func buildCommunity(t *testing.T, brokers int) *community.Community {
	t.Helper()
	ctx := context.Background()
	c, err := community.New(community.Config{Brokers: brokers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	db := relational.NewDatabase()
	if _, err := relational.GenerateGeneric(db, "C2", 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddResource(ctx, community.ResourceSpec{
		Name: "RA", DB: db,
		Fragment: ontology.Fragment{Ontology: "generic", Classes: []string{"C2"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddMRQ(ctx, "MRQ agent", "generic"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddUser(ctx, "user agent", "generic"); err != nil {
		t.Fatal(err)
	}
	return c
}

func memberNames(members []fleet.MemberStatus) []string {
	var out []string
	for _, m := range members {
		out = append(out, m.Name)
	}
	return out
}

func TestFleetDiscoverPollDashboard(t *testing.T) {
	ctx := context.Background()
	c := buildCommunity(t, 2)
	fa, err := c.AddFleet(ctx, "fleet monitor")
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	fa.PollOnce(ctx)

	members := fa.Snapshot()
	want := map[string]bool{
		"Broker1": false, "Broker2": false, "RA": false, "MRQ agent": false, "user agent": false,
	}
	for _, m := range members {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
		}
		if m.Name == "fleet monitor" {
			t.Fatal("the monitor is watching itself")
		}
		if !m.Live {
			t.Errorf("member %s not live after a poll (last error: %s)", m.Name, m.LastErr)
		}
		if m.Polls != 1 {
			t.Errorf("member %s polls = %d, want 1", m.Name, m.Polls)
		}
		if len(m.History) != 1 || !m.History[0].Up {
			t.Errorf("member %s history %+v, want one up sample", m.Name, m.History)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("member %s not discovered (got %v)", name, memberNames(members))
		}
	}

	dash := fa.Dashboard()
	if !strings.Contains(dash, "watched by fleet monitor") {
		t.Fatalf("dashboard header:\n%s", dash)
	}
	for name := range want {
		if !strings.Contains(dash, name) {
			t.Fatalf("dashboard missing %s:\n%s", name, dash)
		}
	}
	if strings.Contains(dash, "DOWN") {
		t.Fatalf("healthy fleet renders DOWN:\n%s", dash)
	}
}

func TestFleetBrokerPlaceholderRekeyed(t *testing.T) {
	// With a single broker there is no peer advertisement to name it: the
	// monitor tracks it by address and the first snapshot introduces it.
	ctx := context.Background()
	c := buildCommunity(t, 1)
	fa, err := c.AddFleet(ctx, "fleet monitor")
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	placeholder := false
	for _, m := range fa.Snapshot() {
		if strings.HasPrefix(m.Name, "broker@") {
			placeholder = true
		}
	}
	if !placeholder {
		t.Fatalf("no broker placeholder after discovery: %v", memberNames(fa.Snapshot()))
	}
	fa.PollOnce(ctx)
	var broker1 bool
	for _, m := range fa.Snapshot() {
		if strings.HasPrefix(m.Name, "broker@") {
			t.Fatalf("placeholder %s survived a successful poll", m.Name)
		}
		if m.Name == "Broker1" {
			broker1 = true
			if !m.Live || m.Type != string(ontology.TypeBroker) {
				t.Fatalf("re-keyed broker %+v", m)
			}
		}
	}
	if !broker1 {
		t.Fatalf("broker not re-keyed to its real name: %v", memberNames(fa.Snapshot()))
	}
}

func TestFleetMarksDeadMemberDown(t *testing.T) {
	ctx := context.Background()
	c := buildCommunity(t, 1)
	fa, err := c.AddFleet(ctx, "fleet monitor")
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	fa.PollOnce(ctx)
	c.Resources[0].Stop()
	fa.PollOnce(ctx)

	var ra *fleet.MemberStatus
	for _, m := range fa.Snapshot() {
		if m.Name == "RA" {
			m := m
			ra = &m
		}
	}
	if ra == nil {
		t.Fatalf("RA not tracked: %v", memberNames(fa.Snapshot()))
	}
	if ra.Live {
		t.Fatal("stopped resource still reported live")
	}
	if ra.Failures != 1 || ra.Polls != 2 || ra.LastErr == "" {
		t.Fatalf("dead member bookkeeping %+v", ra)
	}
	if dash := fa.Dashboard(); !strings.Contains(dash, "RA (resource): DOWN") {
		t.Fatalf("dashboard does not flag the dead resource:\n%s", dash)
	}

	fa.Forget("RA")
	for _, m := range fa.Snapshot() {
		if m.Name == "RA" {
			t.Fatal("RA still tracked after Forget")
		}
	}
}

func TestFleetHistoryRingBounded(t *testing.T) {
	ctx := context.Background()
	c := buildCommunity(t, 1)
	fa, err := fleet.New(fleet.Config{
		Name:         "bounded monitor",
		Transport:    c.Transport,
		KnownBrokers: c.BrokerAddrs(),
		History:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Start(); err != nil {
		t.Fatal(err)
	}
	defer fa.Stop()
	if err := fa.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fa.PollOnce(ctx)
	}
	for _, m := range fa.Snapshot() {
		if m.Polls != 5 {
			t.Errorf("member %s polls = %d, want 5", m.Name, m.Polls)
		}
		if len(m.History) != 3 {
			t.Errorf("member %s history length %d, want ring bound 3", m.Name, len(m.History))
		}
	}
}

func TestFleetHandler(t *testing.T) {
	ctx := context.Background()
	c := buildCommunity(t, 1)
	fa, err := c.AddFleet(ctx, "fleet monitor")
	if err != nil {
		t.Fatal(err)
	}
	if err := fa.Discover(ctx); err != nil {
		t.Fatal(err)
	}
	fa.PollOnce(ctx)

	rr := httptest.NewRecorder()
	fa.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/fleet", nil))
	var members []fleet.MemberStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &members); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(members) == 0 {
		t.Fatal("JSON exposition empty after discovery")
	}
	for _, m := range members {
		if !m.Live {
			t.Errorf("JSON member %s not live", m.Name)
		}
	}

	rr = httptest.NewRecorder()
	fa.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/fleet?format=text", nil))
	if !strings.Contains(rr.Body.String(), "watched by fleet monitor") {
		t.Fatalf("text exposition:\n%s", rr.Body.String())
	}
}
