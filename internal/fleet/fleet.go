// Package fleet implements the InfoSleuth monitor agent: a community
// member that watches the rest of the community. The paper (Section 2.4)
// describes monitor agents that track the operation of the agent
// community; here the monitor discovers members through the broker —
// the same matchmaking every other agent uses — and polls each one over
// KQML with the infosleuth-monitor-ontology conversation, collecting the
// versioned telemetry snapshot every agent.Base (and broker) answers
// with: counters, gauges, histogram quantiles with exemplars, circuit
// breaker states, and EWMA query statistics.
//
// The aggregated view is a bounded per-member time series served as
// /fleet from any daemon running a fleet agent (JSON, plus a
// box-drawing text dashboard under ?format=text) and rendered one-shot
// by `isquery -fleet`.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"infosleuth/internal/agent"
	"infosleuth/internal/kqml"
	"infosleuth/internal/ontology"
	"infosleuth/internal/resilience"
	"infosleuth/internal/stats"
	"infosleuth/internal/telemetry"
	"infosleuth/internal/transport"
)

// DefaultHistory is how many poll samples the monitor keeps per member.
const DefaultHistory = 64

// DefaultPollInterval is the polling cadence when the config names none.
const DefaultPollInterval = 5 * time.Second

var (
	mMembers = telemetry.Default.Gauge("infosleuth_fleet_members",
		"Community members the fleet monitor is currently tracking.")
	mPolls = telemetry.Default.CounterVec("infosleuth_fleet_polls_total",
		"Monitor-snapshot polls issued by the fleet agent, by result.", "result")
	mMemberUp = telemetry.Default.GaugeVec("infosleuth_fleet_member_up",
		"Whether the member answered its latest monitor-snapshot poll (1/0).", "agent")
	mMemberP95 = telemetry.Default.GaugeVec("infosleuth_fleet_member_p95_seconds",
		"Member's worst dispatch p95 from its latest snapshot, in seconds.", "agent")
	mMemberErrRate = telemetry.Default.GaugeVec("infosleuth_fleet_member_error_rate",
		"Member's aggregate query error rate from its latest snapshot.", "agent")
	mOpenBreakers = telemetry.Default.Gauge("infosleuth_fleet_open_breakers",
		"Circuit breakers not in the closed state across all polled members.")
)

// Config configures a fleet monitor agent.
type Config struct {
	// Name, Address, Transport, KnownBrokers, Redundancy, CallTimeout are
	// the base agent knobs (the monitor is an ordinary community member).
	Name         string
	Address      string
	Transport    transport.Transport
	KnownBrokers []string
	Redundancy   int
	CallTimeout  time.Duration
	// CallPolicy, when set, retries polls with backoff and skips members
	// whose circuit is open; nil calls once.
	CallPolicy *resilience.Policy

	// PollInterval is the polling cadence (DefaultPollInterval when zero).
	// Each cycle's delay is jittered ±10% so a fleet of monitors does not
	// synchronize against the community.
	PollInterval time.Duration
	// History bounds the per-member sample ring (DefaultHistory when zero).
	History int
	// Seed seeds the poll jitter; 0 derives one from the agent name.
	Seed int64
}

// sample is one poll observation in a member's bounded time series.
type sample struct {
	At         int64   `json:"at"`
	Up         bool    `json:"up"`
	P95Seconds float64 `json:"p95_seconds,omitempty"`
	ErrorRate  float64 `json:"error_rate,omitempty"`
}

// member is the monitor's record of one community agent.
type member struct {
	name    string
	typ     string
	address string

	polls    int64
	failures int64
	lastSeen time.Time
	lastErr  string
	snap     *kqml.MonitorSnapshot

	ring   []sample
	head   int
	filled bool
}

// Agent is the fleet monitor. Create with New, then Start/Advertise like
// any agent; Discover and StartPolling drive the watching side.
type Agent struct {
	*agent.Base
	cfg Config

	mu      sync.Mutex
	members map[string]*member // keyed by agent name
	rng     *stats.Source
}

// New creates a fleet monitor agent.
func New(cfg Config) (*Agent, error) {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	base, err := agent.New(agent.Config{
		Name:         cfg.Name,
		Address:      cfg.Address,
		Transport:    cfg.Transport,
		KnownBrokers: cfg.KnownBrokers,
		Redundancy:   cfg.Redundancy,
		CallTimeout:  cfg.CallTimeout,
	}, agent.WithCallPolicy(cfg.CallPolicy))
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, c := range cfg.Name {
			seed = seed*31 + int64(c)
		}
	}
	a := &Agent{Base: base, cfg: cfg, members: make(map[string]*member), rng: stats.NewSource(seed)}
	base.AdBuilder = a.buildAd
	return a, nil
}

func (a *Agent) buildAd(addr string) *ontology.Advertisement {
	return &ontology.Advertisement{
		Name:          a.cfg.Name,
		Address:       addr,
		Type:          ontology.TypeMonitor,
		CommLanguages: []string{ontology.LangKQML},
		Conversations: []string{ontology.ConvAskAll},
	}
}

// Discover refreshes the member list from the brokers: an unrestricted
// service query (every zero field is a "?variable") returns the whole
// community, and the monitor's connected brokers are folded in by
// address so the matchmakers themselves get watched too. Members that
// disappeared from the repository are kept — their liveness row goes
// dark rather than silently vanishing — until Forget removes them.
func (a *Agent) Discover(ctx context.Context) error {
	q := &ontology.Query{Policy: ontology.SearchPolicy{HopCount: 2, Follow: ontology.FollowAll}}
	br, err := a.QueryBrokers(ctx, q)
	if err != nil {
		return fmt.Errorf("fleet %s: discovering community: %w", a.Name(), err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, ad := range br.Matches {
		if ad.Name == a.cfg.Name {
			continue // the watcher does not watch itself
		}
		a.upsertLocked(ad.Name, string(ad.Type), ad.Address)
	}
	// Brokers the monitor is connected to — or merely knows about, as a
	// transient `isquery -fleet` monitor that never advertises does — may
	// not advertise into their own repositories; track them by address and
	// let the first snapshot name them.
	for _, addr := range append(a.ConnectedBrokers(), a.cfg.KnownBrokers...) {
		if addr != "" && a.memberAtLocked(addr) == nil {
			a.upsertLocked("broker@"+addr, string(ontology.TypeBroker), addr)
		}
	}
	mMembers.Set(float64(len(a.members)))
	return nil
}

// upsertLocked records or refreshes a member; a.mu must be held.
func (a *Agent) upsertLocked(name, typ, addr string) *member {
	m, ok := a.members[name]
	if !ok {
		m = &member{name: name, ring: make([]sample, a.cfg.History)}
		a.members[name] = m
	}
	if typ != "" {
		m.typ = typ
	}
	if addr != "" {
		m.address = addr
	}
	return m
}

// memberAtLocked finds the member tracked at an address; a.mu must be held.
func (a *Agent) memberAtLocked(addr string) *member {
	for _, m := range a.members {
		if m.address == addr {
			return m
		}
	}
	return nil
}

// Forget drops a member from the monitor's view.
func (a *Agent) Forget(name string) {
	a.mu.Lock()
	delete(a.members, name)
	mMembers.Set(float64(len(a.members)))
	a.mu.Unlock()
}

// PollOnce polls every tracked member for a monitor snapshot and updates
// the per-member time series and the infosleuth_fleet_* gauges.
func (a *Agent) PollOnce(ctx context.Context) {
	a.mu.Lock()
	targets := make([]*member, 0, len(a.members))
	for _, m := range a.members {
		targets = append(targets, m)
	}
	a.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].name < targets[j].name })

	openBreakers := 0
	for _, m := range targets {
		snap, err := a.poll(ctx, m)
		a.mu.Lock()
		m.polls++
		s := sample{At: time.Now().UnixNano()}
		if err != nil {
			m.failures++
			m.lastErr = err.Error()
			mPolls.With("error").Inc()
			mMemberUp.With(m.name).Set(0)
		} else {
			s.Up = true
			s.P95Seconds = snap.DispatchP95Seconds()
			s.ErrorRate = snap.AggregateErrorRate()
			m.lastSeen = time.Now()
			m.lastErr = ""
			m.snap = snap
			if snap.Agent != "" && snap.Agent != m.name {
				// An address-only broker entry introduces itself: re-key the
				// record under its real name.
				delete(a.members, m.name)
				m.name = snap.Agent
				a.members[m.name] = m
			}
			if snap.AgentType != "" {
				m.typ = snap.AgentType
			}
			openBreakers += len(snap.OpenBreakers())
			mPolls.With("ok").Inc()
			mMemberUp.With(m.name).Set(1)
			mMemberP95.With(m.name).Set(s.P95Seconds)
			mMemberErrRate.With(m.name).Set(s.ErrorRate)
		}
		m.ring[m.head] = s
		m.head++
		if m.head == len(m.ring) {
			m.head, m.filled = 0, true
		}
		a.mu.Unlock()
	}
	mOpenBreakers.Set(float64(openBreakers))
}

// poll asks one member for its snapshot over the monitor ontology.
func (a *Agent) poll(ctx context.Context, m *member) (*kqml.MonitorSnapshot, error) {
	msg := kqml.New(kqml.AskOne, a.cfg.Name, &kqml.MonitorSnapshotRequest{Version: kqml.MonitorSnapshotVersion})
	msg.Ontology = kqml.MonitorOntology
	msg.Receiver = m.name
	reply, err := a.Call(ctx, m.address, msg)
	if err != nil {
		return nil, err
	}
	if reply.Performative != kqml.Tell {
		return nil, fmt.Errorf("fleet %s: %s: %s", a.Name(), m.name, kqml.ReasonOf(reply))
	}
	var snap kqml.MonitorSnapshot
	if err := reply.DecodeContent(&snap); err != nil {
		return nil, err
	}
	if snap.Version != kqml.MonitorSnapshotVersion {
		return nil, fmt.Errorf("fleet %s: %s speaks snapshot v%d, want v%d",
			a.Name(), m.name, snap.Version, kqml.MonitorSnapshotVersion)
	}
	return &snap, nil
}

// StartPolling discovers and polls the community until the returned stop
// function is called. Each cycle's delay is the configured interval
// jittered ±10%; stop is synchronous like agent.StartHeartbeat's.
func (a *Agent) StartPolling() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		timer := time.NewTimer(a.jitter())
		defer timer.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
				_ = a.Discover(ctx)
				a.PollOnce(ctx)
				timer.Reset(a.jitter())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}

// jitter returns the next poll delay: the interval ±10%.
func (a *Agent) jitter() time.Duration {
	a.mu.Lock()
	f := 0.9 + 0.2*a.rng.Float64()
	a.mu.Unlock()
	return time.Duration(float64(a.cfg.PollInterval) * f)
}

// MemberStatus is one member's aggregated view, the unit of the /fleet
// JSON exposition.
type MemberStatus struct {
	Name    string `json:"name"`
	Type    string `json:"type,omitempty"`
	Address string `json:"address,omitempty"`
	// Live reports whether the latest poll succeeded.
	Live     bool   `json:"live"`
	Polls    int64  `json:"polls"`
	Failures int64  `json:"failures,omitempty"`
	LastSeen int64  `json:"last_seen,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
	// Latest snapshot-derived health.
	Dormant      bool     `json:"dormant,omitempty"`
	UptimeSec    float64  `json:"uptime_sec,omitempty"`
	RepoSize     int      `json:"repo_size,omitempty"`
	P95Seconds   float64  `json:"p95_seconds,omitempty"`
	ErrorRate    float64  `json:"error_rate,omitempty"`
	OpenBreakers []string `json:"open_breakers,omitempty"`
	// History is the bounded poll time series, oldest first.
	History []sample `json:"history,omitempty"`
}

// Snapshot returns the fleet view, sorted by member name.
func (a *Agent) Snapshot() []MemberStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]MemberStatus, 0, len(a.members))
	for _, m := range a.members {
		st := MemberStatus{
			Name:     m.name,
			Type:     m.typ,
			Address:  m.address,
			Polls:    m.polls,
			Failures: m.failures,
			LastErr:  m.lastErr,
		}
		if !m.lastSeen.IsZero() {
			st.LastSeen = m.lastSeen.UnixNano()
		}
		n := m.head
		start := 0
		if m.filled {
			n = len(m.ring)
			start = m.head
		}
		for i := 0; i < n; i++ {
			st.History = append(st.History, m.ring[(start+i)%len(m.ring)])
		}
		if len(st.History) > 0 {
			st.Live = st.History[len(st.History)-1].Up
		}
		if m.snap != nil {
			st.Dormant = m.snap.Dormant
			st.UptimeSec = m.snap.UptimeSec
			st.RepoSize = m.snap.RepoSize
			st.P95Seconds = m.snap.DispatchP95Seconds()
			st.ErrorRate = m.snap.AggregateErrorRate()
			st.OpenBreakers = m.snap.OpenBreakers()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dashboard renders the fleet as a box-drawing table — the /fleet
// ?format=text view and the `isquery -fleet` output.
func (a *Agent) Dashboard() string {
	return FormatDashboard(a.Name(), a.Snapshot())
}

// FormatDashboard renders a fleet snapshot as text.
func FormatDashboard(monitor string, members []MemberStatus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d member(s) watched by %s\n", len(members), monitor)
	for i, m := range members {
		branch, childPrefix := "├─ ", "│  "
		if i == len(members)-1 {
			branch, childPrefix = "└─ ", "   "
		}
		live := "LIVE"
		if !m.Live {
			live = "DOWN"
		}
		if m.Dormant {
			live = "DORMANT"
		}
		fmt.Fprintf(&b, "%s%s (%s): %s\n", branch, m.Name, m.Type, live)
		var lines []string
		lines = append(lines, fmt.Sprintf("polls %d (%d failed)", m.Polls, m.Failures))
		if m.Live {
			lines = append(lines,
				fmt.Sprintf("dispatch p95 %.3fms, error rate %.2f%%", m.P95Seconds*1000, m.ErrorRate*100))
		}
		if m.RepoSize > 0 {
			lines = append(lines, fmt.Sprintf("repository: %d advertisement(s)", m.RepoSize))
		}
		if len(m.OpenBreakers) > 0 {
			lines = append(lines, "breakers: "+strings.Join(m.OpenBreakers, ", "))
		}
		if m.LastErr != "" {
			lines = append(lines, "last error: "+m.LastErr)
		}
		for j, l := range lines {
			inner := "├─ "
			if j == len(lines)-1 {
				inner = "└─ "
			}
			b.WriteString(childPrefix + inner + l + "\n")
		}
	}
	return b.String()
}

// Handler serves the fleet view, meant to be mounted at /fleet:
//
//	/fleet              JSON array of member statuses
//	/fleet?format=text  the dashboard above
func (a *Agent) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, a.Dashboard())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		members := a.Snapshot()
		if members == nil {
			members = []MemberStatus{}
		}
		_ = enc.Encode(members)
	})
}
