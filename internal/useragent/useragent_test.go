package useragent

import (
	"context"
	"strings"
	"testing"

	"infosleuth/internal/broker"
	"infosleuth/internal/kqml"
	"infosleuth/internal/ontology"
	"infosleuth/internal/transport"
)

// fakeMRQ answers SQL asks with a canned result, or an error reply.
func fakeMRQ(tr transport.Transport, t *testing.T, fail bool) string {
	t.Helper()
	l, err := tr.Listen("inproc://fake-mrq", func(msg *kqml.Message) *kqml.Message {
		if fail {
			r := kqml.New(kqml.Error, "fake MRQ", &kqml.SorryContent{Reason: "boom"})
			r.InReplyTo = msg.ReplyWith
			return r
		}
		r := kqml.New(kqml.Tell, "fake MRQ", &kqml.SQLResult{Columns: []string{"id"}})
		r.InReplyTo = msg.ReplyWith
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l.Addr()
}

func setup(t *testing.T, failMRQ bool) (*Agent, *broker.Broker) {
	t.Helper()
	tr := transport.NewInProc()
	b, err := broker.New(broker.Config{
		Name: "Broker1", Transport: tr,
		World: ontology.NewWorld(ontology.Generic()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Stop() })

	mrqAddr := fakeMRQ(tr, t, failMRQ)
	if err := b.Repository().Put(&ontology.Advertisement{
		Name: "fake MRQ", Address: mrqAddr, Type: ontology.TypeQuery,
		ContentLanguages: []string{ontology.LangSQL2},
		Capabilities:     []string{ontology.CapMultiresourceQuery},
	}); err != nil {
		t.Fatal(err)
	}

	u, err := New(Config{
		Name: "user", Transport: tr,
		KnownBrokers: []string{b.Addr()},
		Ontology:     "generic",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Stop() })
	if _, err := u.Advertise(context.Background()); err != nil {
		t.Fatal(err)
	}
	return u, b
}

func TestSubmitLocatesMRQAndForwards(t *testing.T) {
	u, _ := setup(t, false)
	res, err := u.Submit(context.Background(), "SELECT * FROM C2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "id" {
		t.Errorf("result = %+v", res)
	}
}

func TestSubmitFallsBackWhenNoSpecialist(t *testing.T) {
	// The MRQ has no content fragment, so the class-narrowed lookup
	// finds nothing and Submit retries without classes.
	u, _ := setup(t, false)
	if _, err := u.Submit(context.Background(), "SELECT * FROM C4"); err != nil {
		t.Fatalf("fallback lookup failed: %v", err)
	}
}

func TestSubmitSurfacesMRQError(t *testing.T) {
	u, _ := setup(t, true)
	_, err := u.Submit(context.Background(), "SELECT * FROM C2")
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want MRQ failure surfaced", err)
	}
}

func TestSubmitNoMRQAvailable(t *testing.T) {
	u, b := setup(t, false)
	b.Repository().Remove("fake MRQ")
	_, err := u.Submit(context.Background(), "SELECT * FROM C2")
	if err == nil || !strings.Contains(err.Error(), "no multiresource query agent") {
		t.Errorf("err = %v", err)
	}
}

func TestUserAdvertisement(t *testing.T) {
	u, b := setup(t, false)
	ad, ok := b.Repository().Get("user")
	if !ok {
		t.Fatal("user not advertised")
	}
	if ad.Type != ontology.TypeUser || ad.Address != u.Addr() {
		t.Errorf("ad = %+v", ad)
	}
}
