// Package useragent implements InfoSleuth user agents: proxies for
// individual users that accept SQL queries, locate a multiresource query
// agent through the broker (the paper's Figure 6), and forward the query
// to it.
package useragent

import (
	"context"
	"fmt"
	"time"

	"infosleuth/internal/agent"
	"infosleuth/internal/kqml"
	"infosleuth/internal/ontology"
	"infosleuth/internal/resilience"
	"infosleuth/internal/sqlparse"
	"infosleuth/internal/telemetry"
	"infosleuth/internal/transport"
)

// Config configures a user agent.
type Config struct {
	Name         string
	Address      string
	Transport    transport.Transport
	KnownBrokers []string
	Redundancy   int
	CallTimeout  time.Duration
	// RandomizeBrokerChoice spreads broker queries uniformly over
	// connected brokers (the paper's query-agent behavior).
	RandomizeBrokerChoice bool
	// CallPolicy, when set, retries outgoing calls with backoff and
	// skips peers whose circuit is open; nil calls once.
	CallPolicy *resilience.Policy

	// Ontology optionally narrows MRQ lookup to specialists in the
	// query's classes (the paper's MRQ2 preference). Empty skips the
	// content part of the lookup.
	Ontology string
}

// Agent is a user agent.
type Agent struct {
	*agent.Base
	cfg Config
}

// New creates a user agent; call Start, then Advertise.
func New(cfg Config) (*Agent, error) {
	base, err := agent.New(agent.Config{
		Name:         cfg.Name,
		Address:      cfg.Address,
		Transport:    cfg.Transport,
		KnownBrokers: cfg.KnownBrokers,
		Redundancy:   cfg.Redundancy,
		CallTimeout:  cfg.CallTimeout,

		RandomizeBrokerChoice: cfg.RandomizeBrokerChoice,
	}, agent.WithCallPolicy(cfg.CallPolicy))
	if err != nil {
		return nil, err
	}
	a := &Agent{Base: base, cfg: cfg}
	base.AdBuilder = a.buildAd
	return a, nil
}

func (a *Agent) buildAd(addr string) *ontology.Advertisement {
	return &ontology.Advertisement{
		Name:          a.cfg.Name,
		Address:       addr,
		Type:          ontology.TypeUser,
		CommLanguages: []string{ontology.LangKQML},
		Conversations: []string{ontology.ConvAskAll},
	}
}

// Submit runs one SQL query for the user: locate an MRQ agent via the
// broker, forward the query, return the assembled result. When the query
// names classes and an ontology is configured, the broker lookup includes
// them so a class specialist wins over a generalist. A trace ID on the
// context (telemetry.WithTraceID) makes the whole conversation record
// spans into the flight recorder; SubmitTraced mints one for you.
func (a *Agent) Submit(ctx context.Context, sql string) (*sqlparse.Result, error) {
	if telemetry.TraceIDFrom(ctx) == "" && telemetry.SpanRecorderActive() {
		// Always-on tail sampling: with a flight recorder installed the
		// submission is traced under a minted ID, so a slow or failed
		// query can be pinned into the slowlog after the fact.
		ctx = telemetry.WithTraceID(ctx, telemetry.NewTraceID())
	}
	if !telemetry.RootObserverActive() {
		return a.submit(ctx, sql)
	}
	start := time.Now()
	res, err := a.submit(ctx, sql)
	telemetry.ObserveRoot(telemetry.RootOutcome{
		Op:             telemetry.OpUserSubmit,
		TraceID:        telemetry.TraceIDFrom(ctx),
		DurationMicros: time.Since(start).Microseconds(),
		Err:            err != nil,
	})
	return res, err
}

func (a *Agent) submit(ctx context.Context, sql string) (*sqlparse.Result, error) {
	q := &ontology.Query{
		Type:            ontology.TypeQuery,
		ContentLanguage: ontology.LangSQL2,
		Capabilities:    []string{ontology.CapMultiresourceQuery},
		Limit:           1,
	}
	if a.cfg.Ontology != "" {
		if stmt, err := sqlparse.Parse(sql); err == nil {
			q.Ontology = a.cfg.Ontology
			q.Classes = stmt.Tables()
		}
	}
	br, err := a.QueryBrokers(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("user agent %s: locating an MRQ agent: %w", a.Name(), err)
	}
	if len(br.Matches) == 0 && q.Ontology != "" {
		// No class specialist: fall back to any MRQ agent.
		q.Ontology, q.Classes = "", nil
		br, err = a.QueryBrokers(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("user agent %s: locating an MRQ agent: %w", a.Name(), err)
		}
	}
	if len(br.Matches) == 0 {
		return nil, fmt.Errorf("user agent %s: no multiresource query agent available", a.Name())
	}
	mrqAd := br.Matches[0]

	msg := kqml.New(kqml.AskAll, a.Name(), &kqml.SQLQuery{SQL: sql})
	msg.Language = ontology.LangSQL2
	msg.Receiver = mrqAd.Name
	msg.TraceID = telemetry.TraceIDFrom(ctx)
	reply, err := a.Call(ctx, mrqAd.Address, msg)
	if err != nil {
		return nil, fmt.Errorf("user agent %s: querying %s: %w", a.Name(), mrqAd.Name, err)
	}
	if reply.Performative != kqml.Tell {
		return nil, fmt.Errorf("user agent %s: %s: %s", a.Name(), mrqAd.Name, kqml.ReasonOf(reply))
	}
	var sr kqml.SQLResult
	if err := reply.DecodeContent(&sr); err != nil {
		return nil, err
	}
	return &sqlparse.Result{Columns: sr.Columns, Rows: sr.Rows}, nil
}

// SubmitTraced is Submit with conversation tracing: it reuses the
// context's trace ID or mints one, records the user agent's own top-level
// span, and returns the trace ID so the caller can fetch the assembled
// tree from the flight recorder (or /traces/{id} on a daemon).
func (a *Agent) SubmitTraced(ctx context.Context, sql string) (*sqlparse.Result, string, error) {
	traceID := telemetry.TraceIDFrom(ctx)
	if traceID == "" {
		traceID = telemetry.NewTraceID()
		ctx = telemetry.WithTraceID(ctx, traceID)
	}
	start := time.Now()
	res, err := a.Submit(ctx, sql)
	span := telemetry.Span{
		TraceID:        traceID,
		Agent:          a.Name(),
		Op:             telemetry.OpUserSubmit,
		StartUnixNano:  start.UnixNano(),
		DurationMicros: time.Since(start).Microseconds(),
	}
	if err != nil {
		span.Err = err.Error()
	}
	telemetry.RecordSpan(span)
	return res, traceID, err
}
