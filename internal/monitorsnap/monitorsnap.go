// Package monitorsnap assembles the telemetry snapshot every agent
// answers the infosleuth-monitor-ontology conversation with. It sits
// below both the base agent runtime and the broker (which does not embed
// the base runtime), so each can reply to a monitor-snapshot ask without
// depending on the other.
package monitorsnap

import (
	"time"

	"infosleuth/internal/kqml"
	"infosleuth/internal/resilience"
	"infosleuth/internal/stats"
	"infosleuth/internal/telemetry"
)

// processStart anchors the snapshot's uptime figure. Agents share one
// process-wide registry, so they share one uptime too.
var processStart = time.Now()

// Build assembles the monitor-snapshot payload for the named agent from
// the process-wide registries: every counter, gauge and histogram series
// in telemetry.Default, the rolling per-peer query statistics, and —
// when a resilience policy is installed — its per-peer circuit states.
func Build(name string, policy *resilience.Policy) *kqml.MonitorSnapshot {
	snap := &kqml.MonitorSnapshot{
		Version:   kqml.MonitorSnapshotVersion,
		Agent:     name,
		UnixNano:  time.Now().UnixNano(),
		UptimeSec: time.Since(processStart).Seconds(),
	}
	for fam, series := range telemetry.Default.Snapshot() {
		for label, v := range series {
			switch val := v.(type) {
			case int64:
				if snap.Counters == nil {
					snap.Counters = make(map[string]map[string]int64)
				}
				if snap.Counters[fam] == nil {
					snap.Counters[fam] = make(map[string]int64)
				}
				snap.Counters[fam][label] = val
			case float64:
				if snap.Gauges == nil {
					snap.Gauges = make(map[string]map[string]float64)
				}
				if snap.Gauges[fam] == nil {
					snap.Gauges[fam] = make(map[string]float64)
				}
				snap.Gauges[fam][label] = val
			case telemetry.HistogramSnapshot:
				if snap.Histograms == nil {
					snap.Histograms = make(map[string]map[string]kqml.MonitorHistogram)
				}
				if snap.Histograms[fam] == nil {
					snap.Histograms[fam] = make(map[string]kqml.MonitorHistogram)
				}
				snap.Histograms[fam][label] = kqml.MonitorHistogram{
					Count: val.Count, Sum: val.Sum, Min: val.Min, Max: val.Max,
					P50: val.P50, P95: val.P95, P99: val.P99,
					ExemplarTraceID: val.ExemplarTraceID, ExemplarValue: val.ExemplarValue,
				}
			}
		}
	}
	for _, bs := range policy.BreakerStates() {
		snap.Breakers = append(snap.Breakers, kqml.MonitorBreaker{Peer: bs.Peer, State: bs.State})
	}
	for _, row := range stats.Queries.Snapshot() {
		snap.QueryStats = append(snap.QueryStats, kqml.MonitorQueryStat{
			Peer: row.Peer, Class: row.Class, Count: row.Count, Errors: row.Errors,
			EWMALatencyMicros: row.EWMALatencyMicros, EWMAErrorRate: row.EWMAErrorRate,
		})
	}
	return snap
}
