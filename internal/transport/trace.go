package transport

import (
	"time"

	"infosleuth/internal/kqml"
	"infosleuth/internal/telemetry"
	"infosleuth/internal/telemetry/provenance"
)

// This file is the bridge between KQML conversation tracing and the
// process-local flight recorder. The kqml package stays telemetry-free
// (spans ride reply envelopes as plain data); transport is the lowest
// layer that imports both, so it translates envelope spans into recorder
// spans and stamps every client call with its own rpc.call span. Because
// every inter-agent exchange goes through Call, ingesting reply envelopes
// here covers broker forwards, MRQ fan-out and resource fetches without
// per-caller wiring.

// RecordTraceSpans mirrors envelope spans into the installed span
// recorder, if any. Agents call it (directly or via PropagateTrace call
// sites) when they produce a span locally, and Call invokes it on every
// reply's trace; the recorder deduplicates the double delivery.
func RecordTraceSpans(traceID string, spans ...kqml.TraceSpan) {
	if traceID == "" || len(spans) == 0 || !telemetry.SpanRecorderActive() {
		return
	}
	for _, s := range spans {
		telemetry.RecordSpan(telemetry.Span{
			TraceID:        traceID,
			Agent:          s.Agent,
			Op:             s.Op,
			Hop:            s.Hop,
			StartUnixNano:  s.Start,
			DurationMicros: s.DurationMicros,
			Err:            s.Err,
			Dropped:        s.Dropped,
		})
	}
}

// recordCallTrace emits the client-side rpc.call span for a traced call
// and ingests whatever spans and provenance events the reply envelope
// carried back.
func recordCallTrace(msg, reply *kqml.Message, start time.Time, err error) {
	if msg == nil || msg.TraceID == "" {
		return
	}
	if err == nil && reply != nil && reply.TraceID == msg.TraceID && provenance.Active() {
		provenance.RecordEnvelope(reply.TraceID, reply.Provenance...)
	}
	if !telemetry.SpanRecorderActive() {
		return
	}
	span := telemetry.Span{
		TraceID:        msg.TraceID,
		Agent:          msg.Sender,
		Op:             telemetry.OpRPCCall,
		StartUnixNano:  start.UnixNano(),
		DurationMicros: time.Since(start).Microseconds(),
	}
	if err != nil {
		span.Err = err.Error()
	}
	telemetry.RecordSpan(span)
	if err == nil && reply != nil && reply.TraceID == msg.TraceID {
		RecordTraceSpans(reply.TraceID, reply.Trace...)
	}
}
