package transport

import (
	"time"

	"infosleuth/internal/telemetry"
)

// Transport-layer metrics, recorded into the process-wide telemetry
// registry. The label distinguishes the in-process and TCP transports;
// per-address failure counts are kept separately because they are the raw
// signal behind dead-broker detection (Section 4.2.2): an agent's Call
// failing against a broker address is exactly the observation that starts
// the re-advertising cycle.
var (
	mCalls = telemetry.Default.CounterVec("infosleuth_transport_calls_total",
		"KQML request/reply calls issued, by transport.", "transport")
	mCallErrors = telemetry.Default.CounterVec("infosleuth_transport_call_errors_total",
		"Calls that returned an error, by transport.", "transport")
	mCallSeconds = telemetry.Default.HistogramVec("infosleuth_transport_call_seconds",
		"Round-trip latency of KQML calls in seconds, by transport.", "transport")
	mBytesSent = telemetry.Default.CounterVec("infosleuth_transport_bytes_sent_total",
		"Request payload bytes written, by transport.", "transport")
	mBytesReceived = telemetry.Default.CounterVec("infosleuth_transport_bytes_received_total",
		"Reply payload bytes read, by transport.", "transport")
	mPeerFailures = telemetry.Default.CounterVec("infosleuth_transport_peer_failures_total",
		"Failed calls by remote address — the raw signal feeding dead-broker detection.", "addr")
	mServed = telemetry.Default.CounterVec("infosleuth_transport_served_total",
		"Incoming messages served, by transport.", "transport")
	mServeSeconds = telemetry.Default.HistogramVec("infosleuth_transport_serve_seconds",
		"Server-side handling time per incoming message in seconds, by transport.", "transport")
	mServeErrors = telemetry.Default.CounterVec("infosleuth_transport_serve_errors_total",
		"Incoming exchanges aborted by frame or codec errors, by transport.", "transport")
)

// recordCall folds one completed Call into the registry.
func recordCall(label, addr string, start time.Time, sent, received int, err error) {
	mCalls.With(label).Inc()
	mCallSeconds.With(label).Observe(time.Since(start).Seconds())
	mBytesSent.With(label).Add(int64(sent))
	mBytesReceived.With(label).Add(int64(received))
	if err != nil {
		mCallErrors.With(label).Inc()
		mPeerFailures.With(addr).Inc()
	}
}

// PeerFailures reports how many calls have failed against addr since the
// process started. Agents and operators can use it to corroborate a
// dead-broker diagnosis before dropping the address from the
// connected-broker-list.
func PeerFailures(addr string) int64 {
	return mPeerFailures.With(addr).Value()
}
