package transport

import (
	"time"

	"infosleuth/internal/telemetry"
)

// Transport-layer metrics, recorded into the process-wide telemetry
// registry. The label distinguishes the in-process and TCP transports;
// per-address failure counts are kept separately because they are the raw
// signal behind dead-broker detection (Section 4.2.2): an agent's Call
// failing against a broker address is exactly the observation that starts
// the re-advertising cycle.
var (
	mCalls = telemetry.Default.CounterVec("infosleuth_transport_calls_total",
		"KQML request/reply calls issued, by transport.", "transport")
	mCallErrors = telemetry.Default.CounterVec("infosleuth_transport_call_errors_total",
		"Calls that returned an error, by transport.", "transport")
	mCallSeconds = telemetry.Default.HistogramVec("infosleuth_transport_call_seconds",
		"Round-trip latency of KQML calls in seconds, by transport.", "transport")
	mBytesSent = telemetry.Default.CounterVec("infosleuth_transport_bytes_sent_total",
		"Request payload bytes written, by transport.", "transport")
	mBytesReceived = telemetry.Default.CounterVec("infosleuth_transport_bytes_received_total",
		"Reply payload bytes read, by transport.", "transport")
	mPeerFailures = telemetry.Default.CounterVec("infosleuth_transport_peer_failures_total",
		"Failed calls by remote address — the raw signal feeding dead-broker detection.", "addr")
	mServed = telemetry.Default.CounterVec("infosleuth_transport_served_total",
		"Incoming messages served, by transport.", "transport")
	mServeSeconds = telemetry.Default.HistogramVec("infosleuth_transport_serve_seconds",
		"Server-side handling time per incoming message in seconds, by transport.", "transport")
	mServeErrors = telemetry.Default.CounterVec("infosleuth_transport_serve_errors_total",
		"Incoming exchanges aborted by frame or codec errors, by transport.", "transport")
	mServeIdleCloses = telemetry.Default.CounterVec("infosleuth_transport_serve_idle_closes_total",
		"Server-side connections closed for sitting idle past the idle timeout, by transport.", "transport")

	// Connection-pool metrics. dials vs reuses is the headline ratio: a
	// hot peer should show one dial and then reuses, which is the ≥5x
	// dial reduction the pooling change is accountable for.
	mPoolDials = telemetry.Default.Counter("infosleuth_transport_pool_dials_total",
		"TCP connections dialed (pool misses plus retry redials).")
	mPoolReuses = telemetry.Default.Counter("infosleuth_transport_pool_reuses_total",
		"Calls served over a pooled connection instead of a fresh dial.")
	mPoolEvictions = telemetry.Default.CounterVec("infosleuth_transport_pool_evictions_total",
		"Pooled connections discarded, by reason (expired, broken, overflow, closed).", "reason")
	mPoolIdle = telemetry.Default.Gauge("infosleuth_transport_pool_idle_conns",
		"TCP connections currently parked idle in the pool.")
)

// PoolStats is a point-in-time snapshot of the connection-pool counters,
// for benchmarks and the BENCH_broker.json writer.
type PoolStats struct {
	Dials     int64
	Reuses    int64
	Broken    int64
	IdleConns float64
}

// SnapshotPoolStats reads the process-wide pool counters.
func SnapshotPoolStats() PoolStats {
	return PoolStats{
		Dials:     mPoolDials.Value(),
		Reuses:    mPoolReuses.Value(),
		Broken:    mPoolEvictions.With("broken").Value(),
		IdleConns: mPoolIdle.Value(),
	}
}

// recordCall folds one completed Call into the registry.
func recordCall(label, addr string, start time.Time, sent, received int, err error) {
	mCalls.With(label).Inc()
	mCallSeconds.With(label).Observe(time.Since(start).Seconds())
	mBytesSent.With(label).Add(int64(sent))
	mBytesReceived.With(label).Add(int64(received))
	if err != nil {
		mCallErrors.With(label).Inc()
		mPeerFailures.With(addr).Inc()
	}
}

// PeerFailures reports how many calls have failed against addr since the
// process started. Agents and operators can use it to corroborate a
// dead-broker diagnosis before dropping the address from the
// connected-broker-list.
func PeerFailures(addr string) int64 {
	return mPeerFailures.With(addr).Value()
}
