// Package transport moves KQML messages between agents. Two
// implementations share one interface: an in-process transport used by
// tests, examples and the experiment harness (thousands of agents in one
// process), and a TCP transport with 4-byte length-prefixed JSON frames for
// the cmd/ executables, matching the paper's "contacted via the tcp
// transport protocol at port 4356 on host b1.mcc.com" addressing.
//
// Interaction is request/reply: every Call delivers one message and waits
// for one response, which is how the paper's agents converse (query in,
// result out; advertise in, confirmation out). Failure of the remote end
// surfaces as an error from Call — the signal agents use to detect dead
// brokers (Section 4.2.2).
package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"infosleuth/internal/kqml"
)

// Handler processes one incoming message and returns the reply.
type Handler func(msg *kqml.Message) *kqml.Message

// ErrUnreachable reports that no process is listening at the address —
// what an agent observes when a broker has died.
var ErrUnreachable = errors.New("transport: peer unreachable")

// safeHandle invokes a handler, converting a panic into an error reply so
// one misbehaving message cannot take an agent (or, over TCP, the whole
// process) down.
func safeHandle(h Handler, msg *kqml.Message) (reply *kqml.Message) {
	defer func() {
		if r := recover(); r != nil {
			reply = kqml.New(kqml.Error, msg.Receiver, &kqml.SorryContent{
				Reason: fmt.Sprintf("handler panic: %v", r),
			})
			reply.InReplyTo = msg.ReplyWith
		}
	}()
	return h(msg)
}

// Transport binds handlers to addresses and calls remote handlers.
type Transport interface {
	// Listen serves incoming messages at the address until the returned
	// listener is closed.
	Listen(addr string, h Handler) (Listener, error)
	// Call delivers a message to the address and returns the reply.
	Call(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error)
}

// Listener is an active binding; Close unbinds it.
type Listener interface {
	// Addr returns the bound address (useful when the requested address
	// had port 0).
	Addr() string
	Close() error
}

// InProc is an in-process Transport: addresses of the form
// "inproc://name" map to handlers in a shared registry. The zero value is
// not usable; create one with NewInProc. It is safe for concurrent use.
type InProc struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	next     int
}

// NewInProc returns an empty in-process transport.
func NewInProc() *InProc {
	return &InProc{handlers: make(map[string]Handler)}
}

type inprocListener struct {
	t    *InProc
	addr string
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.t.mu.Lock()
	defer l.t.mu.Unlock()
	delete(l.t.handlers, l.addr)
	return nil
}

// Listen binds a handler. An empty or "inproc://" address is assigned a
// fresh unique one.
func (t *InProc) Listen(addr string, h Handler) (Listener, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" || addr == "inproc://" {
		t.next++
		addr = fmt.Sprintf("inproc://agent-%d", t.next)
	}
	if !strings.HasPrefix(addr, "inproc://") {
		return nil, fmt.Errorf("transport: in-process transport requires inproc:// address, got %q", addr)
	}
	if _, dup := t.handlers[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	t.handlers[addr] = h
	return &inprocListener{t: t, addr: addr}, nil
}

// Call invokes the handler bound at addr synchronously. A missing binding
// returns ErrUnreachable. Context cancellation is honored before dispatch
// (in-process handlers are assumed fast).
func (t *InProc) Call(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
	start := time.Now()
	reply, sent, received, err := t.doCall(ctx, addr, msg)
	recordCall("inproc", addr, start, sent, received, err)
	recordCallTrace(msg, reply, start, err)
	return reply, err
}

func (t *InProc) doCall(ctx context.Context, addr string, msg *kqml.Message) (_ *kqml.Message, sent, received int, _ error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	t.mu.RLock()
	h, ok := t.handlers[addr]
	t.mu.RUnlock()
	if !ok {
		return nil, 0, 0, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	// Round-trip through the codec so in-process behavior matches TCP
	// exactly (no shared pointers between caller and handler).
	wire, err := kqml.Marshal(msg)
	if err != nil {
		return nil, 0, 0, err
	}
	sent = len(wire)
	decoded, err := kqml.Unmarshal(wire)
	if err != nil {
		return nil, sent, 0, err
	}
	served := time.Now()
	reply := safeHandle(h, decoded)
	mServed.With("inproc").Inc()
	mServeSeconds.With("inproc").Observe(time.Since(served).Seconds())
	if reply == nil {
		return nil, sent, 0, fmt.Errorf("transport: handler at %s returned no reply", addr)
	}
	wire, err = kqml.Marshal(reply)
	if err != nil {
		return nil, sent, 0, err
	}
	received = len(wire)
	out, err := kqml.Unmarshal(wire)
	return out, sent, received, err
}
