package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"infosleuth/internal/kqml"
)

// poolCall issues one echo call and fails the test on error.
func poolCall(t *testing.T, tr *TCP, addr string) {
	t.Helper()
	msg := kqml.New(kqml.AskAll, "caller", &kqml.SQLQuery{SQL: "select 1"})
	reply, err := tr.Call(context.Background(), addr, msg)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Performative != kqml.Tell {
		t.Fatalf("reply performative = %q", reply.Performative)
	}
}

// TestPoolReusesConnections is the headline pooling property: N
// sequential calls to one peer dial once.
func TestPoolReusesConnections(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	before := SnapshotPoolStats()
	const calls = 20
	for i := 0; i < calls; i++ {
		poolCall(t, tr, l.Addr())
	}
	after := SnapshotPoolStats()
	if dials := after.Dials - before.Dials; dials != 1 {
		t.Errorf("dials for %d sequential calls = %d, want 1", calls, dials)
	}
	if reuses := after.Reuses - before.Reuses; reuses != calls-1 {
		t.Errorf("reuses = %d, want %d", reuses, calls-1)
	}
	hostport, _ := stripTCP(l.Addr())
	if n := tr.connPool().idleCount(hostport); n != 1 {
		t.Errorf("idle conns after sequential calls = %d, want 1", n)
	}
}

// TestPoolDisabled checks the ablation knob: a negative cap restores the
// dial-per-call behavior.
func TestPoolDisabled(t *testing.T) {
	tr := &TCP{MaxIdleConnsPerHost: -1}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	before := SnapshotPoolStats()
	for i := 0; i < 5; i++ {
		poolCall(t, tr, l.Addr())
	}
	after := SnapshotPoolStats()
	if reuses := after.Reuses - before.Reuses; reuses != 0 {
		t.Errorf("reuses with pooling disabled = %d, want 0", reuses)
	}
}

// TestPoolBoundedIdle checks the per-address cap: parking more
// connections than the cap closes the overflow.
func TestPoolBoundedIdle(t *testing.T) {
	tr := &TCP{MaxIdleConnsPerHost: 2}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Concurrent calls force distinct connections; on completion at most
	// the cap may stay parked.
	const concurrent = 6
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		go func() {
			msg := kqml.New(kqml.AskAll, "caller", &kqml.SQLQuery{SQL: "select 1"})
			_, err := tr.Call(context.Background(), l.Addr(), msg)
			errs <- err
		}()
	}
	for i := 0; i < concurrent; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	hostport, _ := stripTCP(l.Addr())
	if n := tr.connPool().idleCount(hostport); n > 2 {
		t.Errorf("idle conns = %d, want <= cap 2", n)
	}
}

// TestPoolRetriesStaleConnection: a connection the server closed while
// parked must be evicted and the call retried on a fresh dial, invisibly
// to the caller.
func TestPoolRetriesStaleConnection(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	poolCall(t, tr, l.Addr()) // park one connection

	// Restarting the listener on the same port closes the parked
	// connection's server side.
	addr := l.Addr()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := tr.Listen(addr, echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	before := SnapshotPoolStats()
	poolCall(t, tr, addr) // must succeed via the single redial retry
	after := SnapshotPoolStats()
	if broken := after.Broken - before.Broken; broken != 1 {
		t.Errorf("broken evictions = %d, want 1", broken)
	}
}

// TestPoolIdleExpiry: a parked connection older than IdleConnTimeout is
// not handed out again.
func TestPoolIdleExpiry(t *testing.T) {
	tr := &TCP{IdleConnTimeout: 30 * time.Millisecond}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	poolCall(t, tr, l.Addr())
	time.Sleep(60 * time.Millisecond)
	before := SnapshotPoolStats()
	poolCall(t, tr, l.Addr())
	after := SnapshotPoolStats()
	if dials := after.Dials - before.Dials; dials != 1 {
		t.Errorf("dials after expiry = %d, want 1 (expired conn must not be reused)", dials)
	}
}

// TestPoolReaperDrainsIdle: with no further traffic the reaper closes
// expired connections in the background.
func TestPoolReaperDrainsIdle(t *testing.T) {
	tr := &TCP{IdleConnTimeout: 20 * time.Millisecond}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	poolCall(t, tr, l.Addr())
	hostport, _ := stripTCP(l.Addr())
	deadline := time.Now().Add(5 * time.Second)
	for tr.connPool().idleCount(hostport) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("reaper did not drain the expired idle connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseIdleConnections drains the pool on demand.
func TestCloseIdleConnections(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	poolCall(t, tr, l.Addr())
	tr.CloseIdleConnections()
	hostport, _ := stripTCP(l.Addr())
	if n := tr.connPool().idleCount(hostport); n != 0 {
		t.Errorf("idle conns after CloseIdleConnections = %d, want 0", n)
	}
	// The transport stays usable.
	poolCall(t, tr, l.Addr())
}

// TestServerIdleTimeoutClosesQuietConns is the regression test for the
// goroutine leak: a client connection that goes quiet must be closed by
// the server after ServerIdleTimeout rather than pinning its serving
// goroutine forever.
func TestServerIdleTimeoutClosesQuietConns(t *testing.T) {
	tr := &TCP{ServerIdleTimeout: 50 * time.Millisecond}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	hostport, _ := stripTCP(l.Addr())
	conn, err := net.Dial("tcp", hostport)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Send nothing. The server must close the connection, observed here
	// as EOF / reset on a blocking read.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the quiet connection open; expected idle close")
	}
}

// TestServerIdleTimeoutSparesActiveConns: exchanges slower than the
// timeout interval but with steady traffic must not be cut.
func TestServerIdleTimeoutSparesActiveConns(t *testing.T) {
	tr := &TCP{ServerIdleTimeout: 80 * time.Millisecond}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Each call resets the idle clock; spacing them below the timeout
	// keeps one pooled connection alive across all of them.
	before := SnapshotPoolStats()
	for i := 0; i < 4; i++ {
		poolCall(t, tr, l.Addr())
		time.Sleep(40 * time.Millisecond)
	}
	after := SnapshotPoolStats()
	if dials := after.Dials - before.Dials; dials != 1 {
		t.Errorf("dials = %d, want 1 (steady traffic must keep the conn alive)", dials)
	}
}

// TestListenerCloseWithParkedConns: closing a listener must not hang on
// client connections parked in pools (the server closes its side).
func TestListenerCloseWithParkedConns(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	poolCall(t, tr, l.Addr())

	done := make(chan error, 1)
	go func() { done <- l.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("listener Close hung on a parked client connection")
	}
}

func BenchmarkPooledVsUnpooledCall(b *testing.B) {
	for _, mode := range []struct {
		name    string
		maxIdle int
	}{
		{"pooled", 0},
		{"dial-per-call", -1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			tr := &TCP{MaxIdleConnsPerHost: mode.maxIdle}
			l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			msg := kqml.New(kqml.AskAll, "caller", &kqml.SQLQuery{SQL: "select 1"})
			before := SnapshotPoolStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Call(context.Background(), l.Addr(), msg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := SnapshotPoolStats()
			b.ReportMetric(float64(after.Dials-before.Dials)/float64(b.N), "dials/call")
		})
	}
}
