package transport

import (
	"context"
	"net"
	"sync"
	"time"
)

// Connection pooling for the TCP transport. Before this existed every
// Call dialed, used and discarded a fresh connection, so a query agent
// talking to one broker paid a TCP handshake per request — the dominant
// fixed cost on the Section 5 hot path once matchmaking itself is fast.
// serveConn has always handled sequential request/reply exchanges on one
// connection, so keeping client connections warm changes nothing on the
// wire: the pool only moves the dial out of the per-call path.
//
// The pool keeps a bounded LIFO stack of idle connections per peer
// address. LIFO keeps the working set small and hot: under steady load
// the same one or two connections are reused while the rest age out via
// the idle reaper. A connection that fails mid-exchange is evicted (and
// the exchange retried once on a fresh dial when it had been idle — see
// TCP.doCall); a connection returned to a full stack is closed rather
// than kept.

// pooledConn is one idle connection with the time it went idle, for
// expiry decisions.
type pooledConn struct {
	conn net.Conn
	idle time.Time
}

// connPool holds idle client connections per "host:port" target.
type connPool struct {
	maxIdle int           // per-address idle cap
	timeout time.Duration // idle expiry

	mu      sync.Mutex
	idle    map[string][]pooledConn
	reaping bool
}

func newConnPool(maxIdle int, timeout time.Duration) *connPool {
	return &connPool{
		maxIdle: maxIdle,
		timeout: timeout,
		idle:    make(map[string][]pooledConn),
	}
}

// get pops the most recently parked live connection for the address, or
// returns nil when the caller must dial. Expired connections found on the
// way are closed and counted as evictions.
func (p *connPool) get(hostport string) net.Conn {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	stack := p.idle[hostport]
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.timeout > 0 && now.Sub(pc.idle) > p.timeout {
			pc.conn.Close()
			mPoolEvictions.With("expired").Inc()
			mPoolIdle.Add(-1)
			continue
		}
		p.storeLocked(hostport, stack)
		mPoolIdle.Add(-1)
		return pc.conn
	}
	p.storeLocked(hostport, stack)
	return nil
}

// put parks a healthy connection for reuse. It refuses when the
// per-address cap is reached, closing the connection instead, and lazily
// starts the idle reaper.
func (p *connPool) put(hostport string, conn net.Conn) {
	p.mu.Lock()
	if len(p.idle[hostport]) >= p.maxIdle {
		p.mu.Unlock()
		conn.Close()
		mPoolEvictions.With("overflow").Inc()
		return
	}
	p.idle[hostport] = append(p.idle[hostport], pooledConn{conn: conn, idle: time.Now()})
	mPoolIdle.Add(1)
	startReaper := !p.reaping && p.timeout > 0
	if startReaper {
		p.reaping = true
	}
	p.mu.Unlock()
	if startReaper {
		go p.reap()
	}
}

// storeLocked writes a stack back, dropping empty map entries so
// long-gone peers do not accumulate.
func (p *connPool) storeLocked(hostport string, stack []pooledConn) {
	if len(stack) == 0 {
		delete(p.idle, hostport)
		return
	}
	p.idle[hostport] = stack
}

// reap sweeps expired idle connections. It runs while the pool holds any
// idle connection and exits when the pool drains, to be restarted by the
// next put — so an idle process carries no background goroutine.
func (p *connPool) reap() {
	tick := p.timeout / 2
	if tick < time.Second {
		tick = time.Second
	}
	for {
		time.Sleep(tick)
		now := time.Now()
		p.mu.Lock()
		for hostport, stack := range p.idle {
			kept := stack[:0]
			for _, pc := range stack {
				if now.Sub(pc.idle) > p.timeout {
					pc.conn.Close()
					mPoolEvictions.With("expired").Inc()
					mPoolIdle.Add(-1)
					continue
				}
				kept = append(kept, pc)
			}
			p.storeLocked(hostport, kept)
		}
		if len(p.idle) == 0 {
			p.reaping = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// drain closes every idle connection. The pool remains usable: the next
// exchange dials fresh and may park its connection again.
func (p *connPool) drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for hostport, stack := range p.idle {
		for _, pc := range stack {
			pc.conn.Close()
			mPoolEvictions.With("closed").Inc()
			mPoolIdle.Add(-1)
		}
		delete(p.idle, hostport)
	}
}

// idleCount reports the pooled idle connections for one address (tests
// and the stats snapshot).
func (p *connPool) idleCount(hostport string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[hostport])
}

// checkout returns a connection to hostport — pooled when possible,
// freshly dialed otherwise — honoring the context during dials. reused
// reports whether the connection came from the pool, which is what
// decides retry eligibility when the exchange fails.
func (t *TCP) checkout(ctx context.Context, hostport string) (conn net.Conn, reused bool, err error) {
	if pool := t.connPool(); pool != nil {
		if c := pool.get(hostport); c != nil {
			mPoolReuses.Inc()
			return c, true, nil
		}
	}
	c, err := t.dial(ctx, hostport)
	return c, false, err
}

func (t *TCP) dial(ctx context.Context, hostport string) (net.Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", hostport)
	if err != nil {
		return nil, err
	}
	mPoolDials.Inc()
	return conn, nil
}

// checkin returns a healthy connection to the pool, or closes it when
// pooling is disabled.
func (t *TCP) checkin(hostport string, conn net.Conn) {
	if pool := t.connPool(); pool != nil {
		pool.put(hostport, conn)
		return
	}
	conn.Close()
}

// connPool lazily builds the pool so the zero TCP value stays ready to
// use; it returns nil when pooling is disabled.
func (t *TCP) connPool() *connPool {
	if t.MaxIdleConnsPerHost < 0 {
		return nil
	}
	t.poolOnce.Do(func() {
		maxIdle := t.MaxIdleConnsPerHost
		if maxIdle == 0 {
			maxIdle = DefaultMaxIdleConnsPerHost
		}
		timeout := t.IdleConnTimeout
		if timeout == 0 {
			timeout = DefaultIdleConnTimeout
		}
		t.pool = newConnPool(maxIdle, timeout)
	})
	return t.pool
}

// CloseIdleConnections drops every pooled connection. In-flight calls
// are unaffected; the next Call per peer dials fresh. Call it when
// tearing a client down so parked connections do not linger until the
// peer's idle timeout fires.
func (t *TCP) CloseIdleConnections() {
	if pool := t.connPool(); pool != nil {
		pool.drain()
	}
}
