package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"infosleuth/internal/kqml"
)

// MaxFrame bounds a single message frame (16 MiB): large enough for any
// result the reproduction produces, small enough to fail fast on a
// corrupted length prefix.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports a frame whose length prefix or payload exceeds
// MaxFrame — on the read side usually a corrupted prefix or a non-KQML
// peer, on the write side a result that should have been paginated.
var ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrame")

// ErrTruncatedFrame reports a connection that closed or failed in the
// middle of a frame: the peer died mid-reply, as opposed to a clean close
// between exchanges (plain io.EOF) or a peer that never existed
// (ErrUnreachable).
var ErrTruncatedFrame = errors.New("transport: truncated frame")

// Pool and server-side idle defaults, overridable per TCP value.
const (
	// DefaultMaxIdleConnsPerHost bounds idle pooled connections per peer.
	DefaultMaxIdleConnsPerHost = 4
	// DefaultIdleConnTimeout is how long a pooled client connection may
	// sit idle before the reaper closes it.
	DefaultIdleConnTimeout = 60 * time.Second
	// DefaultServerIdleTimeout is how long the server side keeps a quiet
	// connection before closing it. It is deliberately longer than the
	// client pool's idle expiry so the client usually closes first and
	// never checks out a connection the server is about to kill.
	DefaultServerIdleTimeout = 2 * time.Minute
)

// TCP is a Transport over TCP with "tcp://host:port" addresses. Frames are
// a 4-byte big-endian length followed by the JSON-encoded message.
// Connections are pooled: a Call reuses an idle connection to its peer
// when one is parked, and parks its connection on success, so steady
// traffic to one peer pays the TCP handshake once instead of per call
// (serveConn has always served sequential exchanges per connection, so
// only this client side changed). The zero value is ready to use.
type TCP struct {
	// DialTimeout bounds connection establishment when the Call context
	// carries no deadline; zero means 5 seconds.
	DialTimeout time.Duration
	// MaxIdleConnsPerHost bounds the idle pooled connections kept per
	// peer address; zero means DefaultMaxIdleConnsPerHost, negative
	// disables pooling entirely (every Call dials — the pre-pool
	// behavior, kept for the dial-cost ablation benchmarks).
	MaxIdleConnsPerHost int
	// IdleConnTimeout is how long a pooled connection may sit idle
	// before the reaper evicts it; zero means DefaultIdleConnTimeout.
	IdleConnTimeout time.Duration
	// ServerIdleTimeout closes server-side connections that carry no
	// request for this long, so abandoned client connections cannot pin
	// a serving goroutine forever; zero means DefaultServerIdleTimeout,
	// negative disables the deadline.
	ServerIdleTimeout time.Duration

	poolOnce sync.Once
	pool     *connPool
}

type tcpListener struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	// mu guards conns, the active server-side connections. Close closes
	// them so a listener shutdown does not wait out clients whose pooled
	// connections are parked open.
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func (l *tcpListener) Addr() string { return "tcp://" + l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	close(l.closed)
	err := l.ln.Close()
	l.mu.Lock()
	for conn := range l.conns {
		conn.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

func (l *tcpListener) track(conn net.Conn) {
	l.mu.Lock()
	l.conns[conn] = struct{}{}
	l.mu.Unlock()
}

func (l *tcpListener) untrack(conn net.Conn) {
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
}

// Listen serves at "tcp://host:port"; port 0 picks a free port, reported by
// the listener's Addr.
func (t *TCP) Listen(addr string, h Handler) (Listener, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	hostport, err := stripTCP(addr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	idle := t.ServerIdleTimeout
	if idle == 0 {
		idle = DefaultServerIdleTimeout
	}
	tl := &tcpListener{ln: ln, closed: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	tl.wg.Add(1)
	go func() {
		defer tl.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-tl.closed:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
			tl.wg.Add(1)
			go func() {
				defer tl.wg.Done()
				defer tl.untrack(conn)
				defer conn.Close()
				tl.track(conn)
				serveConn(conn, h, idle)
			}()
		}
	}()
	return tl, nil
}

// serveConn handles sequential request/reply exchanges on one connection
// until the peer closes it, a frame error occurs, or the connection sits
// quiet past idleTimeout — without the deadline an abandoned (now:
// pooled) client connection would pin this goroutine forever.
func serveConn(conn net.Conn, h Handler, idleTimeout time.Duration) {
	for {
		if idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idleTimeout))
		}
		req, err := readFrame(conn)
		if err != nil {
			switch {
			case errors.Is(err, io.EOF):
				// Clean close between exchanges.
			case errors.Is(err, os.ErrDeadlineExceeded):
				mServeIdleCloses.With("tcp").Inc()
			default:
				mServeErrors.With("tcp").Inc()
			}
			return
		}
		msg, err := kqml.Unmarshal(req)
		if err != nil {
			mServeErrors.With("tcp").Inc()
			return
		}
		start := time.Now()
		reply := safeHandle(h, msg)
		mServed.With("tcp").Inc()
		mServeSeconds.With("tcp").Observe(time.Since(start).Seconds())
		if reply == nil {
			reply = &kqml.Message{Performative: kqml.Error, Sender: msg.Receiver}
		}
		out, err := kqml.Marshal(reply)
		if err != nil {
			mServeErrors.With("tcp").Inc()
			return
		}
		if err := writeFrame(conn, out); err != nil {
			mServeErrors.With("tcp").Inc()
			return
		}
	}
}

// Call sends the message to the address and waits for the reply, reusing
// a pooled connection when one is parked and dialing otherwise.
// Connection refusals surface as ErrUnreachable. The write and read both
// run under a deadline derived from the context, and cancellation aborts
// an in-flight exchange, so a hung remote returns the context's error
// instead of blocking the caller forever. An exchange that fails on a
// reused connection — typically one the peer closed while it sat idle —
// is evicted and retried once on a fresh dial.
func (t *TCP) Call(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
	start := time.Now()
	reply, sent, received, err := t.doCall(ctx, addr, msg)
	recordCall("tcp", addr, start, sent, received, err)
	recordCallTrace(msg, reply, start, err)
	return reply, err
}

func (t *TCP) doCall(ctx context.Context, addr string, msg *kqml.Message) (_ *kqml.Message, sent, received int, _ error) {
	hostport, err := stripTCP(addr)
	if err != nil {
		return nil, 0, 0, err
	}
	out, err := kqml.Marshal(msg)
	if err != nil {
		return nil, 0, 0, err
	}
	conn, reused, err := t.checkout(ctx, hostport)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	reply, sent, received, err := t.exchange(ctx, conn, addr, hostport, out)
	if err != nil && reused && ctx.Err() == nil && !errors.Is(err, ErrFrameTooLarge) {
		// The parked connection had gone stale under us (the peer's idle
		// timeout, a restart). The request is re-sent verbatim on a
		// fresh dial — once: a second failure is a real peer problem.
		mPoolEvictions.With("broken").Inc()
		conn, err = t.dial(ctx, hostport)
		if err != nil {
			return nil, sent, received, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
		}
		var sent2, received2 int
		reply, sent2, received2, err = t.exchange(ctx, conn, addr, hostport, out)
		sent += sent2
		received += received2
	}
	return reply, sent, received, err
}

// exchange performs one framed request/reply on the connection. On
// success the connection is parked for reuse; on failure it is closed.
func (t *TCP) exchange(ctx context.Context, conn net.Conn, addr, hostport string, out []byte) (_ *kqml.Message, sent, received int, _ error) {
	// Derive the read/write deadline from the context via a watcher rather
	// than conn.SetDeadline(ctx.Deadline()): ctx.Done() closes only after
	// ctx.Err() is set, so when a blocked write or read wakes up the cause
	// is unambiguous. This also covers cancellation without a deadline.
	// The watcher is joined (not just signaled) before the connection is
	// parked, so a late cancellation cannot poison a pooled connection's
	// deadline after it has been reset.
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-watchStop:
		}
	}()
	stopWatcher := func() {
		close(watchStop)
		<-watchDone
	}
	// ctxWrap prefers the context's error once it has fired, so callers
	// see context.DeadlineExceeded / context.Canceled rather than an
	// opaque i/o timeout.
	ctxWrap := func(op string, err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("transport: %s %s: %w", op, addr, ctxErr)
		}
		return fmt.Errorf("transport: %s %s: %w", op, addr, err)
	}
	if err := writeFrame(conn, out); err != nil {
		stopWatcher()
		conn.Close()
		return nil, 0, 0, ctxWrap("writing to", err)
	}
	sent = len(out)
	in, err := readFrame(conn)
	if err != nil {
		stopWatcher()
		conn.Close()
		return nil, sent, 0, ctxWrap("reading reply from", err)
	}
	stopWatcher()
	reply, err := kqml.Unmarshal(in)
	if err != nil {
		conn.Close()
		return nil, sent, len(in), err
	}
	_ = conn.SetDeadline(time.Time{})
	t.checkin(hostport, conn)
	return reply, sent, len(in), nil
}

func stripTCP(addr string) (string, error) {
	if !strings.HasPrefix(addr, "tcp://") {
		return "", fmt.Errorf("transport: TCP transport requires tcp:// address, got %q", addr)
	}
	return strings.TrimPrefix(addr, "tcp://"), nil
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: writing %d bytes (limit %d)", ErrFrameTooLarge, len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Bytes arrived, then the stream died: a peer failing
			// mid-frame, not a clean between-exchanges close.
			return nil, fmt.Errorf("%w: connection closed mid-header: %v", ErrTruncatedFrame, err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: reading %d bytes (limit %d)", ErrFrameTooLarge, n, MaxFrame)
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: got %d of %d payload bytes: %v", ErrTruncatedFrame, m, n, err)
	}
	return payload, nil
}
