package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"infosleuth/internal/kqml"
)

// MaxFrame bounds a single message frame (16 MiB): large enough for any
// result the reproduction produces, small enough to fail fast on a
// corrupted length prefix.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports a frame whose length prefix or payload exceeds
// MaxFrame — on the read side usually a corrupted prefix or a non-KQML
// peer, on the write side a result that should have been paginated.
var ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrame")

// ErrTruncatedFrame reports a connection that closed or failed in the
// middle of a frame: the peer died mid-reply, as opposed to a clean close
// between exchanges (plain io.EOF) or a peer that never existed
// (ErrUnreachable).
var ErrTruncatedFrame = errors.New("transport: truncated frame")

// TCP is a Transport over TCP with "tcp://host:port" addresses. Frames are
// a 4-byte big-endian length followed by the JSON-encoded message; each
// Call opens a connection, writes one request, reads one reply and closes.
// The zero value is ready to use.
type TCP struct {
	// DialTimeout bounds connection establishment when the Call context
	// carries no deadline; zero means 5 seconds.
	DialTimeout time.Duration
}

type tcpListener struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

func (l *tcpListener) Addr() string { return "tcp://" + l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	close(l.closed)
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// Listen serves at "tcp://host:port"; port 0 picks a free port, reported by
// the listener's Addr.
func (t *TCP) Listen(addr string, h Handler) (Listener, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	hostport, err := stripTCP(addr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	tl := &tcpListener{ln: ln, closed: make(chan struct{})}
	tl.wg.Add(1)
	go func() {
		defer tl.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-tl.closed:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
			tl.wg.Add(1)
			go func() {
				defer tl.wg.Done()
				defer conn.Close()
				serveConn(conn, h)
			}()
		}
	}()
	return tl, nil
}

// serveConn handles sequential request/reply exchanges on one connection
// until the peer closes it or a frame error occurs.
func serveConn(conn net.Conn, h Handler) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				mServeErrors.With("tcp").Inc()
			}
			return
		}
		msg, err := kqml.Unmarshal(req)
		if err != nil {
			mServeErrors.With("tcp").Inc()
			return
		}
		start := time.Now()
		reply := safeHandle(h, msg)
		mServed.With("tcp").Inc()
		mServeSeconds.With("tcp").Observe(time.Since(start).Seconds())
		if reply == nil {
			reply = &kqml.Message{Performative: kqml.Error, Sender: msg.Receiver}
		}
		out, err := kqml.Marshal(reply)
		if err != nil {
			mServeErrors.With("tcp").Inc()
			return
		}
		if err := writeFrame(conn, out); err != nil {
			mServeErrors.With("tcp").Inc()
			return
		}
	}
}

// Call dials the address, sends the message and waits for the reply.
// Connection refusals surface as ErrUnreachable. The write and read both
// run under a deadline derived from the context, and cancellation aborts
// an in-flight exchange, so a hung remote returns the context's error
// instead of blocking the caller forever.
func (t *TCP) Call(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
	start := time.Now()
	reply, sent, received, err := t.doCall(ctx, addr, msg)
	recordCall("tcp", addr, start, sent, received, err)
	return reply, err
}

func (t *TCP) doCall(ctx context.Context, addr string, msg *kqml.Message) (_ *kqml.Message, sent, received int, _ error) {
	hostport, err := stripTCP(addr)
	if err != nil {
		return nil, 0, 0, err
	}
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", hostport)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	// Derive the read/write deadline from the context via a watcher rather
	// than conn.SetDeadline(ctx.Deadline()): ctx.Done() closes only after
	// ctx.Err() is set, so when a blocked write or read wakes up the cause
	// is unambiguous. This also covers cancellation without a deadline.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()
	// ctxWrap prefers the context's error once it has fired, so callers
	// see context.DeadlineExceeded / context.Canceled rather than an
	// opaque i/o timeout.
	ctxWrap := func(op string, err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("transport: %s %s: %w", op, addr, ctxErr)
		}
		return fmt.Errorf("transport: %s %s: %w", op, addr, err)
	}
	out, err := kqml.Marshal(msg)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := writeFrame(conn, out); err != nil {
		return nil, 0, 0, ctxWrap("writing to", err)
	}
	sent = len(out)
	in, err := readFrame(conn)
	if err != nil {
		return nil, sent, 0, ctxWrap("reading reply from", err)
	}
	received = len(in)
	reply, err := kqml.Unmarshal(in)
	return reply, sent, received, err
}

func stripTCP(addr string) (string, error) {
	if !strings.HasPrefix(addr, "tcp://") {
		return "", fmt.Errorf("transport: TCP transport requires tcp:// address, got %q", addr)
	}
	return strings.TrimPrefix(addr, "tcp://"), nil
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: writing %d bytes (limit %d)", ErrFrameTooLarge, len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Bytes arrived, then the stream died: a peer failing
			// mid-frame, not a clean between-exchanges close.
			return nil, fmt.Errorf("%w: connection closed mid-header: %v", ErrTruncatedFrame, err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: reading %d bytes (limit %d)", ErrFrameTooLarge, n, MaxFrame)
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: got %d of %d payload bytes: %v", ErrTruncatedFrame, m, n, err)
	}
	return payload, nil
}
