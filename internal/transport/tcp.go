package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"infosleuth/internal/kqml"
)

// MaxFrame bounds a single message frame (16 MiB): large enough for any
// result the reproduction produces, small enough to fail fast on a
// corrupted length prefix.
const MaxFrame = 16 << 20

// TCP is a Transport over TCP with "tcp://host:port" addresses. Frames are
// a 4-byte big-endian length followed by the JSON-encoded message; each
// Call opens a connection, writes one request, reads one reply and closes.
// The zero value is ready to use.
type TCP struct {
	// DialTimeout bounds connection establishment when the Call context
	// carries no deadline; zero means 5 seconds.
	DialTimeout time.Duration
}

type tcpListener struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

func (l *tcpListener) Addr() string { return "tcp://" + l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	close(l.closed)
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// Listen serves at "tcp://host:port"; port 0 picks a free port, reported by
// the listener's Addr.
func (t *TCP) Listen(addr string, h Handler) (Listener, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	hostport, err := stripTCP(addr)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	tl := &tcpListener{ln: ln, closed: make(chan struct{})}
	tl.wg.Add(1)
	go func() {
		defer tl.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-tl.closed:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
			tl.wg.Add(1)
			go func() {
				defer tl.wg.Done()
				defer conn.Close()
				serveConn(conn, h)
			}()
		}
	}()
	return tl, nil
}

// serveConn handles sequential request/reply exchanges on one connection
// until the peer closes it or a frame error occurs.
func serveConn(conn net.Conn, h Handler) {
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		msg, err := kqml.Unmarshal(req)
		if err != nil {
			return
		}
		reply := safeHandle(h, msg)
		if reply == nil {
			reply = &kqml.Message{Performative: kqml.Error, Sender: msg.Receiver}
		}
		out, err := kqml.Marshal(reply)
		if err != nil {
			return
		}
		if err := writeFrame(conn, out); err != nil {
			return
		}
	}
}

// Call dials the address, sends the message and waits for the reply.
// Connection refusals surface as ErrUnreachable.
func (t *TCP) Call(ctx context.Context, addr string, msg *kqml.Message) (*kqml.Message, error) {
	hostport, err := stripTCP(addr)
	if err != nil {
		return nil, err
	}
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, err
		}
	}
	out, err := kqml.Marshal(msg)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, out); err != nil {
		return nil, fmt.Errorf("transport: writing to %s: %w", addr, err)
	}
	in, err := readFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("transport: reading reply from %s: %w", addr, err)
	}
	return kqml.Unmarshal(in)
}

func stripTCP(addr string) (string, error) {
	if !strings.HasPrefix(addr, "tcp://") {
		return "", fmt.Errorf("transport: TCP transport requires tcp:// address, got %q", addr)
	}
	return strings.TrimPrefix(addr, "tcp://"), nil
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
