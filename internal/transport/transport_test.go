package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"infosleuth/internal/kqml"
)

func echoHandler(name string) Handler {
	return func(msg *kqml.Message) *kqml.Message {
		reply := &kqml.Message{
			Performative: kqml.Tell,
			Sender:       name,
			Receiver:     msg.Sender,
			InReplyTo:    msg.ReplyWith,
			Content:      msg.Content,
		}
		return reply
	}
}

func testCall(t *testing.T, tr Transport, addr string) {
	t.Helper()
	msg := kqml.New(kqml.AskAll, "caller", &kqml.SQLQuery{SQL: "select * from C2"})
	msg.ReplyWith = "m1"
	reply, err := tr.Call(context.Background(), addr, msg)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Performative != kqml.Tell || reply.InReplyTo != "m1" {
		t.Errorf("reply = %+v", reply)
	}
	var q kqml.SQLQuery
	if err := reply.DecodeContent(&q); err != nil {
		t.Fatal(err)
	}
	if q.SQL != "select * from C2" {
		t.Errorf("echoed content = %q", q.SQL)
	}
}

func TestInProcCall(t *testing.T) {
	tr := NewInProc()
	l, err := tr.Listen("inproc://echo", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testCall(t, tr, "inproc://echo")
}

func TestInProcUnreachable(t *testing.T) {
	tr := NewInProc()
	_, err := tr.Call(context.Background(), "inproc://nobody", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestInProcCloseUnbinds(t *testing.T) {
	tr := NewInProc()
	l, err := tr.Listen("inproc://a", echoHandler("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = tr.Call(context.Background(), "inproc://a", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("after close, err = %v, want ErrUnreachable", err)
	}
	// Address can be reused after close — agents restart at the same
	// address in the robustness experiments.
	if _, err := tr.Listen("inproc://a", echoHandler("a")); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestInProcDuplicateBind(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Listen("inproc://a", echoHandler("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("inproc://a", echoHandler("a2")); err == nil {
		t.Error("duplicate bind should fail")
	}
}

func TestInProcAutoAddress(t *testing.T) {
	tr := NewInProc()
	l1, err := tr.Listen("", echoHandler("x"))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := tr.Listen("", echoHandler("y"))
	if err != nil {
		t.Fatal(err)
	}
	if l1.Addr() == l2.Addr() {
		t.Errorf("auto addresses collide: %s", l1.Addr())
	}
	testCall(t, tr, l1.Addr())
}

func TestInProcRejectsWrongScheme(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Listen("tcp://x:1", echoHandler("x")); err == nil {
		t.Error("inproc transport should reject tcp addresses")
	}
}

func TestInProcNoSharedPointers(t *testing.T) {
	// The in-process transport must behave like the wire: mutations by
	// the handler must not leak back into the caller's message.
	tr := NewInProc()
	var got *kqml.Message
	_, err := tr.Listen("inproc://m", func(msg *kqml.Message) *kqml.Message {
		got = msg
		msg.Sender = "mutated"
		return &kqml.Message{Performative: kqml.Tell, Sender: "m"}
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := kqml.New(kqml.Ping, "caller", &kqml.PingContent{AgentName: "caller"})
	if _, err := tr.Call(context.Background(), "inproc://m", orig); err != nil {
		t.Fatal(err)
	}
	if orig.Sender != "caller" {
		t.Error("handler mutation leaked into the caller's message")
	}
	if got == orig {
		t.Error("handler received the caller's pointer")
	}
}

func TestInProcConcurrentCalls(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Listen("inproc://echo", echoHandler("echo")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := kqml.New(kqml.AskAll, fmt.Sprintf("caller-%d", i), &kqml.SQLQuery{SQL: "q"})
			if _, err := tr.Call(context.Background(), "inproc://echo", m); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestInProcContextCancelled(t *testing.T) {
	tr := NewInProc()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tr.Call(ctx, "inproc://x", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if err == nil {
		t.Error("cancelled context should fail the call")
	}
}

func TestTCPCall(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testCall(t, tr, l.Addr())
}

func TestTCPUnreachable(t *testing.T) {
	tr := &TCP{DialTimeout: 200 * time.Millisecond}
	// A port that nothing listens on.
	_, err := tr.Call(context.Background(), "tcp://127.0.0.1:1", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPListenerCloseStops(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tr2 := &TCP{DialTimeout: 200 * time.Millisecond}
	if _, err := tr2.Call(context.Background(), addr, kqml.New(kqml.Ping, "x", &kqml.PingContent{})); err == nil {
		t.Error("call to closed listener should fail")
	}
}

func TestTCPSequentialCallsOnManyConnections(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		testCall(t, tr, l.Addr())
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := kqml.New(kqml.AskAll, "c", &kqml.SQLQuery{SQL: "q"})
			if _, err := tr.Call(context.Background(), l.Addr(), m); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPDeadline(t *testing.T) {
	tr := &TCP{}
	slow := func(msg *kqml.Message) *kqml.Message {
		time.Sleep(300 * time.Millisecond)
		return &kqml.Message{Performative: kqml.Tell, Sender: "slow"}
	}
	l, err := tr.Listen("tcp://127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := tr.Call(ctx, l.Addr(), kqml.New(kqml.Ping, "x", &kqml.PingContent{})); err == nil {
		t.Error("deadline should abort the slow call")
	}
}

func TestTCPRejectsWrongScheme(t *testing.T) {
	tr := &TCP{}
	if _, err := tr.Listen("inproc://x", echoHandler("x")); err == nil {
		t.Error("TCP transport should reject inproc addresses")
	}
	if _, err := tr.Call(context.Background(), "inproc://x", &kqml.Message{Performative: kqml.Ping, Sender: "s"}); err == nil {
		t.Error("TCP call should reject inproc addresses")
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var sink frameBuffer
	err := writeFrame(&sink, make([]byte, MaxFrame+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write err = %v, want ErrFrameTooLarge", err)
	}
}

// hungListener accepts TCP connections and never replies — the shape of a
// remote that wedged after accepting (distinct from a dead peer, which
// refuses the connection outright).
func hungListener(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go func() {
				// Drain the request but never answer.
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
					select {
					case <-done:
						return
					default:
					}
				}
			}()
		}
	}()
	return "tcp://" + ln.Addr().String(), func() {
		close(done)
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}
}

// TestTCPHungRemoteReturnsContextError is the regression test for the
// read-path deadline: a remote that accepts the connection and then hangs
// must fail the Call with the context's error once the deadline passes,
// not block forever on the read.
func TestTCPHungRemoteReturnsContextError(t *testing.T) {
	addr, stop := hungListener(t)
	defer stop()
	tr := &TCP{}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.Call(ctx, addr, kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("call took %v: the read did not honor the deadline", elapsed)
	}
}

// TestTCPCancelAbortsInFlightCall covers cancellation without a deadline:
// before the hardening, a context with no deadline left the connection
// with no read deadline at all, so a hung remote blocked the caller
// forever regardless of cancellation.
func TestTCPCancelAbortsInFlightCall(t *testing.T) {
	addr, stop := hungListener(t)
	defer stop()
	tr := &TCP{}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := tr.Call(ctx, addr, kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("call took %v: cancellation did not abort the read", elapsed)
	}
}

// TestReadFrameOversized covers the read side of the frame limit: a
// length prefix beyond MaxFrame (a corrupted prefix or a non-KQML peer)
// surfaces as ErrFrameTooLarge.
func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, err := readFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestReadFrameMidFrameEOF covers a peer dying mid-frame: both a
// truncated header and a truncated payload surface as ErrTruncatedFrame,
// while a clean close between exchanges stays plain io.EOF (which is how
// serveConn tells the difference).
func TestReadFrameMidFrameEOF(t *testing.T) {
	// Truncated header: two of four length bytes.
	_, err := readFrame(bytes.NewReader([]byte{0, 0}))
	if !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("mid-header err = %v, want ErrTruncatedFrame", err)
	}
	// Truncated payload: header promises 100 bytes, 10 arrive.
	var frame bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	frame.Write(hdr[:])
	frame.Write(make([]byte, 10))
	_, err = readFrame(&frame)
	if !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("mid-payload err = %v, want ErrTruncatedFrame", err)
	}
	// Clean close between exchanges: plain io.EOF, not a frame error.
	_, err = readFrame(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) || errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("clean close err = %v, want plain io.EOF", err)
	}
}

// TestErrorPathsAreDistinct pins the taxonomy: unreachable peers,
// oversized frames, and truncated frames are three different conditions
// and must never alias (agents treat unreachable as broker death, the
// others as protocol damage).
func TestErrorPathsAreDistinct(t *testing.T) {
	tr := &TCP{DialTimeout: 200 * time.Millisecond}
	_, refusedErr := tr.Call(context.Background(), "tcp://127.0.0.1:1",
		kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(refusedErr, ErrUnreachable) {
		t.Fatalf("refused err = %v, want ErrUnreachable", refusedErr)
	}
	if errors.Is(refusedErr, ErrFrameTooLarge) || errors.Is(refusedErr, ErrTruncatedFrame) {
		t.Errorf("refused error aliases a frame error: %v", refusedErr)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, oversizedErr := readFrame(bytes.NewReader(hdr[:]))
	if errors.Is(oversizedErr, ErrTruncatedFrame) || errors.Is(oversizedErr, ErrUnreachable) {
		t.Errorf("oversized error aliases another sentinel: %v", oversizedErr)
	}
	_, truncatedErr := readFrame(bytes.NewReader([]byte{0, 0}))
	if errors.Is(truncatedErr, ErrFrameTooLarge) || errors.Is(truncatedErr, ErrUnreachable) {
		t.Errorf("truncated error aliases another sentinel: %v", truncatedErr)
	}
}

// TestOversizedReplySurfacesOnClient sends a request to a server whose
// reply frame claims to exceed MaxFrame; the client must fail with
// ErrFrameTooLarge rather than allocating the bogus size.
func TestOversizedReplySurfacesOnClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readFrame(conn); err != nil {
			return
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		_, _ = conn.Write(hdr[:])
	}()
	tr := &TCP{}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = tr.Call(ctx, "tcp://"+ln.Addr().String(), kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestPeerFailureCounter checks the telemetry feed behind dead-broker
// detection: failed calls are counted against the remote address.
func TestPeerFailureCounter(t *testing.T) {
	tr := &TCP{DialTimeout: 200 * time.Millisecond}
	const addr = "tcp://127.0.0.1:1"
	before := PeerFailures(addr)
	_, _ = tr.Call(context.Background(), addr, kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if got := PeerFailures(addr); got != before+1 {
		t.Errorf("PeerFailures(%s) = %d, want %d", addr, got, before+1)
	}
}

type frameBuffer struct{ data []byte }

func (b *frameBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func TestHandlerPanicBecomesErrorReply(t *testing.T) {
	tr := NewInProc()
	_, err := tr.Listen("inproc://panicky", func(msg *kqml.Message) *kqml.Message {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := tr.Call(context.Background(), "inproc://panicky",
		kqml.New(kqml.AskAll, "x", &kqml.SQLQuery{SQL: "s"}))
	if err != nil {
		t.Fatalf("panic should become a reply, not a call error: %v", err)
	}
	if reply.Performative != kqml.Error {
		t.Errorf("reply = %s, want error", reply.Performative)
	}
}

func TestTCPHandlerPanicKeepsServerAlive(t *testing.T) {
	tr := &TCP{}
	calls := 0
	l, err := tr.Listen("tcp://127.0.0.1:0", func(msg *kqml.Message) *kqml.Message {
		calls++
		if calls == 1 {
			panic("first call explodes")
		}
		return kqml.New(kqml.Tell, "s", &kqml.PingReply{Known: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reply, err := tr.Call(context.Background(), l.Addr(), kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != kqml.Error {
		t.Errorf("first reply = %s, want error", reply.Performative)
	}
	// The listener survived; the next call succeeds.
	reply, err = tr.Call(context.Background(), l.Addr(), kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != kqml.Tell {
		t.Errorf("second reply = %s, want tell", reply.Performative)
	}
}
