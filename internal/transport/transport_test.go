package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"infosleuth/internal/kqml"
)

func echoHandler(name string) Handler {
	return func(msg *kqml.Message) *kqml.Message {
		reply := &kqml.Message{
			Performative: kqml.Tell,
			Sender:       name,
			Receiver:     msg.Sender,
			InReplyTo:    msg.ReplyWith,
			Content:      msg.Content,
		}
		return reply
	}
}

func testCall(t *testing.T, tr Transport, addr string) {
	t.Helper()
	msg := kqml.New(kqml.AskAll, "caller", &kqml.SQLQuery{SQL: "select * from C2"})
	msg.ReplyWith = "m1"
	reply, err := tr.Call(context.Background(), addr, msg)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Performative != kqml.Tell || reply.InReplyTo != "m1" {
		t.Errorf("reply = %+v", reply)
	}
	var q kqml.SQLQuery
	if err := reply.DecodeContent(&q); err != nil {
		t.Fatal(err)
	}
	if q.SQL != "select * from C2" {
		t.Errorf("echoed content = %q", q.SQL)
	}
}

func TestInProcCall(t *testing.T) {
	tr := NewInProc()
	l, err := tr.Listen("inproc://echo", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testCall(t, tr, "inproc://echo")
}

func TestInProcUnreachable(t *testing.T) {
	tr := NewInProc()
	_, err := tr.Call(context.Background(), "inproc://nobody", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestInProcCloseUnbinds(t *testing.T) {
	tr := NewInProc()
	l, err := tr.Listen("inproc://a", echoHandler("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = tr.Call(context.Background(), "inproc://a", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("after close, err = %v, want ErrUnreachable", err)
	}
	// Address can be reused after close — agents restart at the same
	// address in the robustness experiments.
	if _, err := tr.Listen("inproc://a", echoHandler("a")); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestInProcDuplicateBind(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Listen("inproc://a", echoHandler("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("inproc://a", echoHandler("a2")); err == nil {
		t.Error("duplicate bind should fail")
	}
}

func TestInProcAutoAddress(t *testing.T) {
	tr := NewInProc()
	l1, err := tr.Listen("", echoHandler("x"))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := tr.Listen("", echoHandler("y"))
	if err != nil {
		t.Fatal(err)
	}
	if l1.Addr() == l2.Addr() {
		t.Errorf("auto addresses collide: %s", l1.Addr())
	}
	testCall(t, tr, l1.Addr())
}

func TestInProcRejectsWrongScheme(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Listen("tcp://x:1", echoHandler("x")); err == nil {
		t.Error("inproc transport should reject tcp addresses")
	}
}

func TestInProcNoSharedPointers(t *testing.T) {
	// The in-process transport must behave like the wire: mutations by
	// the handler must not leak back into the caller's message.
	tr := NewInProc()
	var got *kqml.Message
	_, err := tr.Listen("inproc://m", func(msg *kqml.Message) *kqml.Message {
		got = msg
		msg.Sender = "mutated"
		return &kqml.Message{Performative: kqml.Tell, Sender: "m"}
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := kqml.New(kqml.Ping, "caller", &kqml.PingContent{AgentName: "caller"})
	if _, err := tr.Call(context.Background(), "inproc://m", orig); err != nil {
		t.Fatal(err)
	}
	if orig.Sender != "caller" {
		t.Error("handler mutation leaked into the caller's message")
	}
	if got == orig {
		t.Error("handler received the caller's pointer")
	}
}

func TestInProcConcurrentCalls(t *testing.T) {
	tr := NewInProc()
	if _, err := tr.Listen("inproc://echo", echoHandler("echo")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := kqml.New(kqml.AskAll, fmt.Sprintf("caller-%d", i), &kqml.SQLQuery{SQL: "q"})
			if _, err := tr.Call(context.Background(), "inproc://echo", m); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestInProcContextCancelled(t *testing.T) {
	tr := NewInProc()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tr.Call(ctx, "inproc://x", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if err == nil {
		t.Error("cancelled context should fail the call")
	}
}

func TestTCPCall(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testCall(t, tr, l.Addr())
}

func TestTCPUnreachable(t *testing.T) {
	tr := &TCP{DialTimeout: 200 * time.Millisecond}
	// A port that nothing listens on.
	_, err := tr.Call(context.Background(), "tcp://127.0.0.1:1", kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPListenerCloseStops(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tr2 := &TCP{DialTimeout: 200 * time.Millisecond}
	if _, err := tr2.Call(context.Background(), addr, kqml.New(kqml.Ping, "x", &kqml.PingContent{})); err == nil {
		t.Error("call to closed listener should fail")
	}
}

func TestTCPSequentialCallsOnManyConnections(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		testCall(t, tr, l.Addr())
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("tcp://127.0.0.1:0", echoHandler("echo"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := kqml.New(kqml.AskAll, "c", &kqml.SQLQuery{SQL: "q"})
			if _, err := tr.Call(context.Background(), l.Addr(), m); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPDeadline(t *testing.T) {
	tr := &TCP{}
	slow := func(msg *kqml.Message) *kqml.Message {
		time.Sleep(300 * time.Millisecond)
		return &kqml.Message{Performative: kqml.Tell, Sender: "slow"}
	}
	l, err := tr.Listen("tcp://127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := tr.Call(ctx, l.Addr(), kqml.New(kqml.Ping, "x", &kqml.PingContent{})); err == nil {
		t.Error("deadline should abort the slow call")
	}
}

func TestTCPRejectsWrongScheme(t *testing.T) {
	tr := &TCP{}
	if _, err := tr.Listen("inproc://x", echoHandler("x")); err == nil {
		t.Error("TCP transport should reject inproc addresses")
	}
	if _, err := tr.Call(context.Background(), "inproc://x", &kqml.Message{Performative: kqml.Ping, Sender: "s"}); err == nil {
		t.Error("TCP call should reject inproc addresses")
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var sink frameBuffer
	if err := writeFrame(&sink, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized frame should be rejected on write")
	}
}

type frameBuffer struct{ data []byte }

func (b *frameBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func TestHandlerPanicBecomesErrorReply(t *testing.T) {
	tr := NewInProc()
	_, err := tr.Listen("inproc://panicky", func(msg *kqml.Message) *kqml.Message {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := tr.Call(context.Background(), "inproc://panicky",
		kqml.New(kqml.AskAll, "x", &kqml.SQLQuery{SQL: "s"}))
	if err != nil {
		t.Fatalf("panic should become a reply, not a call error: %v", err)
	}
	if reply.Performative != kqml.Error {
		t.Errorf("reply = %s, want error", reply.Performative)
	}
}

func TestTCPHandlerPanicKeepsServerAlive(t *testing.T) {
	tr := &TCP{}
	calls := 0
	l, err := tr.Listen("tcp://127.0.0.1:0", func(msg *kqml.Message) *kqml.Message {
		calls++
		if calls == 1 {
			panic("first call explodes")
		}
		return kqml.New(kqml.Tell, "s", &kqml.PingReply{Known: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	reply, err := tr.Call(context.Background(), l.Addr(), kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != kqml.Error {
		t.Errorf("first reply = %s, want error", reply.Performative)
	}
	// The listener survived; the next call succeeds.
	reply, err = tr.Call(context.Background(), l.Addr(), kqml.New(kqml.Ping, "x", &kqml.PingContent{}))
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != kqml.Tell {
		t.Errorf("second reply = %s, want tell", reply.Performative)
	}
}
