package transport

import (
	"context"
	"strings"
	"sync"
	"testing"

	"infosleuth/internal/kqml"
	"infosleuth/internal/telemetry"
)

// collector is a minimal telemetry.SpanRecorder for tests.
type collector struct {
	mu    sync.Mutex
	spans []telemetry.Span
}

func (c *collector) RecordSpan(s telemetry.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

func (c *collector) byOp(op string) []telemetry.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []telemetry.Span
	for _, s := range c.spans {
		if s.Op == op {
			out = append(out, s)
		}
	}
	return out
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// TestTraceOpConstantsMatchKQML pins the duplicated op strings together:
// kqml carries them on envelopes, telemetry assembles trees from them,
// and the packages deliberately don't import each other.
func TestTraceOpConstantsMatchKQML(t *testing.T) {
	pairs := []struct{ kqmlOp, telemetryOp, name string }{
		{kqml.OpBrokerSearch, telemetry.OpBrokerSearch, "OpBrokerSearch"},
		{kqml.OpResourceQuery, telemetry.OpResourceQuery, "OpResourceQuery"},
		{kqml.OpTraceDropped, telemetry.OpTraceDropped, "OpTraceDropped"},
	}
	for _, p := range pairs {
		if p.kqmlOp != p.telemetryOp {
			t.Errorf("%s diverged: kqml %q vs telemetry %q", p.name, p.kqmlOp, p.telemetryOp)
		}
	}
}

// TestCallRecordsTraceSpans: a traced Call records the client-side
// rpc.call span and mirrors the spans the reply envelope carried back.
func TestCallRecordsTraceSpans(t *testing.T) {
	col := &collector{}
	prev := telemetry.SetSpanRecorder(col)
	defer telemetry.SetSpanRecorder(prev)

	tr := NewInProc()
	l, err := tr.Listen("inproc://traced", func(msg *kqml.Message) *kqml.Message {
		reply := kqml.New(kqml.Tell, "traced", &kqml.PingReply{Known: true})
		reply.InReplyTo = msg.ReplyWith
		kqml.PropagateTrace(msg, reply, kqml.TraceSpan{
			Agent: "traced", Op: kqml.OpBrokerSearch, Hop: 2, Start: 42, DurationMicros: 7, Err: "boom",
		})
		return reply
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	msg := kqml.New(kqml.AskAll, "caller", &kqml.SQLQuery{SQL: "q"})
	msg.TraceID = "0123456789abcdef"
	if _, err := tr.Call(context.Background(), "inproc://traced", msg); err != nil {
		t.Fatal(err)
	}

	calls := col.byOp(telemetry.OpRPCCall)
	if len(calls) != 1 {
		t.Fatalf("recorded %d rpc.call spans, want 1", len(calls))
	}
	if c := calls[0]; c.TraceID != msg.TraceID || c.Agent != "caller" || c.StartUnixNano == 0 || c.Err != "" {
		t.Errorf("rpc.call span = %+v", c)
	}
	mirrored := col.byOp(kqml.OpBrokerSearch)
	if len(mirrored) != 1 {
		t.Fatalf("recorded %d mirrored envelope spans, want 1", len(mirrored))
	}
	m := mirrored[0]
	if m.TraceID != msg.TraceID || m.Agent != "traced" || m.Hop != 2 || m.StartUnixNano != 42 ||
		m.DurationMicros != 7 || m.Err != "boom" {
		t.Errorf("mirrored span lost fields: %+v", m)
	}
}

// TestCallWithoutTraceIDRecordsNothing: untraced traffic must not touch
// the recorder at all.
func TestCallWithoutTraceIDRecordsNothing(t *testing.T) {
	col := &collector{}
	prev := telemetry.SetSpanRecorder(col)
	defer telemetry.SetSpanRecorder(prev)

	tr := NewInProc()
	l, err := tr.Listen("inproc://untraced", echoHandler("untraced"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	testCall(t, tr, "inproc://untraced")
	if n := col.len(); n != 0 {
		t.Errorf("untraced call recorded %d spans, want 0", n)
	}
}

// TestFailedCallRecordsErrSpan: an unreachable peer still yields the
// client-side span, with the error attached.
func TestFailedCallRecordsErrSpan(t *testing.T) {
	col := &collector{}
	prev := telemetry.SetSpanRecorder(col)
	defer telemetry.SetSpanRecorder(prev)

	tr := NewInProc()
	msg := kqml.New(kqml.AskAll, "caller", &kqml.SQLQuery{SQL: "q"})
	msg.TraceID = "0123456789abcdef"
	if _, err := tr.Call(context.Background(), "inproc://nobody-home", msg); err == nil {
		t.Fatal("expected unreachable error")
	}
	calls := col.byOp(telemetry.OpRPCCall)
	if len(calls) != 1 || calls[0].Err == "" {
		t.Fatalf("failed call spans = %+v, want one rpc.call with Err set", calls)
	}
}

// TestRecordTraceSpansFieldMapping covers the envelope→telemetry bridge
// directly, including the Dropped marker.
func TestRecordTraceSpansFieldMapping(t *testing.T) {
	col := &collector{}
	prev := telemetry.SetSpanRecorder(col)
	defer telemetry.SetSpanRecorder(prev)

	RecordTraceSpans("tid",
		kqml.TraceSpan{Op: kqml.OpTraceDropped, Dropped: 5},
		kqml.TraceSpan{Agent: "b", Op: kqml.OpResourceQuery, Hop: 1, Start: 10, DurationMicros: 3},
	)
	if col.len() != 2 {
		t.Fatalf("recorded %d spans, want 2", col.len())
	}
	if d := col.byOp(telemetry.OpTraceDropped); len(d) != 1 || d[0].Dropped != 5 || d[0].TraceID != "tid" {
		t.Errorf("dropped marker = %+v", d)
	}
	// No trace ID or no spans: no-ops.
	RecordTraceSpans("", kqml.TraceSpan{Agent: "x", Op: "op"})
	RecordTraceSpans("tid")
	if col.len() != 2 {
		t.Errorf("no-op calls recorded spans; have %d", col.len())
	}
}

// TestForwardLoopCannotBloatFrames is the frame-size regression for the
// envelope cap: a pathological forwarding loop that stamps spans forever
// must converge to MaxTraceSpans spans, keeping the marshaled frame far
// below the transport's MaxFrame limit.
func TestForwardLoopCannotBloatFrames(t *testing.T) {
	msg := kqml.New(kqml.Tell, "b", &kqml.PingReply{Known: true})
	msg.TraceID = "0123456789abcdef"
	longErr := strings.Repeat("e", 100)
	for i := 0; i < 10000; i++ {
		msg.Trace = kqml.AppendSpans(msg.Trace, kqml.TraceSpan{
			Agent: "Broker1", Op: kqml.OpBrokerSearch, Hop: i % 5,
			Start: int64(i + 1), DurationMicros: 99, Err: longErr,
		})
	}
	if len(msg.Trace) > kqml.MaxTraceSpans {
		t.Fatalf("envelope holds %d spans, cap is %d", len(msg.Trace), kqml.MaxTraceSpans)
	}
	data, err := kqml.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= MaxFrame {
		t.Fatalf("frame is %d bytes, exceeds MaxFrame %d", len(data), MaxFrame)
	}
	if len(data) > 64<<10 {
		t.Errorf("capped trace frame is %d bytes; expected well under 64KiB", len(data))
	}
	// The marker accounts for everything evicted.
	if msg.Trace[0].Op != kqml.OpTraceDropped || msg.Trace[0].Dropped != 10000-(kqml.MaxTraceSpans-1) {
		t.Errorf("marker = %+v, want %d dropped", msg.Trace[0], 10000-(kqml.MaxTraceSpans-1))
	}
}
