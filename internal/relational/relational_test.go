package relational

import (
	"testing"

	"infosleuth/internal/constraint"
)

func patientSchema() Schema {
	return Schema{
		Name: "patient",
		Columns: []Column{
			{Name: "patient_id", Type: TypeString},
			{Name: "patient_age", Type: TypeNumber},
			{Name: "region", Type: TypeString},
		},
		Key: "patient_id",
	}
}

func TestSchemaValidate(t *testing.T) {
	tests := []struct {
		name    string
		schema  Schema
		wantErr bool
	}{
		{"valid", patientSchema(), false},
		{"no name", Schema{Columns: []Column{{Name: "a"}}}, true},
		{"no columns", Schema{Name: "t"}, true},
		{"duplicate column", Schema{Name: "t", Columns: []Column{{Name: "a"}, {Name: "A"}}}, true},
		{"unnamed column", Schema{Name: "t", Columns: []Column{{}}}, true},
		{"bad key", Schema{Name: "t", Columns: []Column{{Name: "a"}}, Key: "zz"}, true},
		{"no key ok", Schema{Name: "t", Columns: []Column{{Name: "a"}}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.schema.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTableInsertTypeChecks(t *testing.T) {
	tbl := MustNewTable(patientSchema())
	if err := tbl.Insert(Row{Str("P1"), Num(44), Str("Dallas")}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{Str("P2"), Str("not a number"), Str("Dallas")}); err == nil {
		t.Error("type mismatch should be rejected")
	}
	if err := tbl.Insert(Row{Str("P3"), Num(1)}); err == nil {
		t.Error("arity mismatch should be rejected")
	}
	if err := tbl.Insert(Row{Str("P1"), Num(50), Str("Austin")}); err == nil {
		t.Error("duplicate key should be rejected")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

func TestTableLookup(t *testing.T) {
	tbl := MustNewTable(patientSchema())
	tbl.MustInsert(Row{Str("P1"), Num(44), Str("Dallas")})
	r, ok := tbl.Lookup(Str("P1"))
	if !ok {
		t.Fatal("Lookup missed existing key")
	}
	if !r[1].Equal(Num(44)) {
		t.Errorf("Lookup row = %v", r)
	}
	if _, ok := tbl.Lookup(Str("P9")); ok {
		t.Error("Lookup hit missing key")
	}
	// Mutating the returned row must not affect the table.
	r[1] = Num(99)
	r2, _ := tbl.Lookup(Str("P1"))
	if !r2[1].Equal(Num(44)) {
		t.Error("Lookup leaked internal row storage")
	}
}

func TestTableScanStops(t *testing.T) {
	tbl := MustNewTable(Schema{Name: "t", Columns: []Column{{Name: "a", Type: TypeNumber}}})
	for i := 0; i < 10; i++ {
		tbl.MustInsert(Row{Num(float64(i))})
	}
	count := 0
	tbl.Scan(func(Row) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("scan visited %d rows, want 3", count)
	}
}

func TestTableRecord(t *testing.T) {
	tbl := MustNewTable(patientSchema())
	rec := tbl.Record(Row{Str("P1"), Num(44), Str("Dallas")})
	if v, ok := rec["patient.patient_age"]; !ok || !v.Equal(Num(44)) {
		t.Errorf("qualified record key missing: %v", rec)
	}
	if v, ok := rec["patient_age"]; !ok || !v.Equal(Num(44)) {
		t.Errorf("bare record key missing: %v", rec)
	}
	// Constraint matching end to end.
	cs := constraint.MustParse("patient.patient_age between 25 and 65")
	if !cs.Matches(rec) {
		t.Error("constraint should match record")
	}
}

func TestDatabaseCreateAttach(t *testing.T) {
	db := NewDatabase()
	if _, err := db.Create(patientSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create(patientSchema()); err == nil {
		t.Error("duplicate table should fail")
	}
	other := MustNewTable(Schema{Name: "Patient", Columns: []Column{{Name: "x", Type: TypeNumber}}})
	if err := db.Attach(other); err == nil {
		t.Error("case-insensitive duplicate attach should fail")
	}
	if _, ok := db.Table("PATIENT"); !ok {
		t.Error("table lookup should be case-insensitive")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "patient" {
		t.Errorf("Tables = %v", got)
	}
}

func TestVerticalFragment(t *testing.T) {
	tbl := MustNewTable(patientSchema())
	tbl.MustInsert(Row{Str("P1"), Num(44), Str("Dallas")})
	tbl.MustInsert(Row{Str("P2"), Num(70), Str("Houston")})

	frag, err := VerticalFragment(tbl, "patient_v1", []string{"region"})
	if err != nil {
		t.Fatal(err)
	}
	s := frag.Schema()
	if len(s.Columns) != 2 || s.Columns[0].Name != "patient_id" || s.Columns[1].Name != "region" {
		t.Errorf("fragment columns = %v", s.ColNames())
	}
	if frag.Len() != 2 {
		t.Errorf("fragment rows = %d, want 2", frag.Len())
	}
	r, ok := frag.Lookup(Str("P2"))
	if !ok || !r[1].Equal(Str("Houston")) {
		t.Errorf("fragment lookup = %v, %v", r, ok)
	}
	// Listing the key explicitly must not duplicate it.
	frag2, err := VerticalFragment(tbl, "patient_v2", []string{"patient_id", "patient_age"})
	if err != nil {
		t.Fatal(err)
	}
	if len(frag2.Schema().Columns) != 2 {
		t.Errorf("fragment2 columns = %v", frag2.Schema().ColNames())
	}
	// Unknown column errors.
	if _, err := VerticalFragment(tbl, "bad", []string{"nope"}); err == nil {
		t.Error("unknown column should fail")
	}
	// Keyless table cannot fragment vertically.
	nk := MustNewTable(Schema{Name: "nk", Columns: []Column{{Name: "a", Type: TypeNumber}}})
	if _, err := VerticalFragment(nk, "f", []string{"a"}); err == nil {
		t.Error("keyless vertical fragmentation should fail")
	}
}

func TestHorizontalFragment(t *testing.T) {
	tbl := MustNewTable(patientSchema())
	tbl.MustInsert(Row{Str("P1"), Num(44), Str("Dallas")})
	tbl.MustInsert(Row{Str("P2"), Num(80), Str("Houston")})
	tbl.MustInsert(Row{Str("P3"), Num(60), Str("Dallas")})

	cs := constraint.MustParse("patient.patient_age between 43 and 75")
	frag, err := HorizontalFragment(tbl, "patient_4375", cs)
	if err != nil {
		t.Fatal(err)
	}
	if frag.Len() != 2 {
		t.Errorf("fragment rows = %d, want 2 (P1, P3)", frag.Len())
	}
	if _, ok := frag.Lookup(Str("P2")); ok {
		t.Error("P2 (age 80) should be excluded")
	}
}

func TestRangeBounds(t *testing.T) {
	tbl := MustNewTable(patientSchema())
	tbl.MustInsert(Row{Str("P1"), Num(44), Str("Dallas")})
	tbl.MustInsert(Row{Str("P2"), Num(80), Str("Houston")})
	lo, hi, ok := RangeBounds(tbl, "patient_age")
	if !ok || lo != 44 || hi != 80 {
		t.Errorf("RangeBounds = %v %v %v, want 44 80 true", lo, hi, ok)
	}
	if _, _, ok := RangeBounds(tbl, "region"); ok {
		t.Error("non-numeric column should report !ok")
	}
	empty := MustNewTable(patientSchema())
	if _, _, ok := RangeBounds(empty, "patient_age"); ok {
		t.Error("empty table should report !ok")
	}
}

func TestGenerateHealthcareDeterministic(t *testing.T) {
	db1, db2 := NewDatabase(), NewDatabase()
	if err := GenerateHealthcare(db1, 50, 7); err != nil {
		t.Fatal(err)
	}
	if err := GenerateHealthcare(db2, 50, 7); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"patient", "diagnosis", "hospital_stay"} {
		t1, ok1 := db1.Table(name)
		t2, ok2 := db2.Table(name)
		if !ok1 || !ok2 {
			t.Fatalf("table %s missing", name)
		}
		if t1.Len() != t2.Len() {
			t.Errorf("%s: lengths differ %d vs %d", name, t1.Len(), t2.Len())
		}
	}
	p, _ := db1.Table("patient")
	if p.Len() != 50 {
		t.Errorf("patients = %d, want 50", p.Len())
	}
	s, _ := db1.Table("hospital_stay")
	if s.Len() != 17 {
		t.Errorf("stays = %d, want 17 (every third of 50)", s.Len())
	}
	// Ages stay in the generator's documented 1..90 range.
	lo, hi, ok := RangeBounds(p, "patient_age")
	if !ok || lo < 1 || hi > 90 {
		t.Errorf("age bounds = %v..%v", lo, hi)
	}
}

func TestGenerateGeneric(t *testing.T) {
	db := NewDatabase()
	tbl, err := GenerateGeneric(db, "C2", 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 25 {
		t.Errorf("rows = %d, want 25", tbl.Len())
	}
	if _, ok := db.Table("C2"); !ok {
		t.Error("C2 not registered in database")
	}
	if db.TotalRows() != 25 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	r, ok := tbl.Lookup(Str("C2-000000"))
	if !ok {
		t.Fatalf("key C2-000000 missing")
	}
	if r[0].Text() != "C2-000000" {
		t.Errorf("key = %v", r[0])
	}
}
