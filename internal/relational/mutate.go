package relational

import (
	"fmt"

	"infosleuth/internal/constraint"
)

// Update replaces the row with the given key. It fails on keyless tables,
// missing keys, or rows that do not satisfy the schema. The new row's key
// must equal the old one.
func (t *Table) Update(key constraint.Value, r Row) error {
	if t.byKey == nil {
		return fmt.Errorf("relational: table %q has no key; update unsupported", t.schema.Name)
	}
	if len(r) != len(t.schema.Columns) {
		return fmt.Errorf("relational: table %q expects %d values, got %d", t.schema.Name, len(t.schema.Columns), len(r))
	}
	ki := t.schema.ColIndex(t.schema.Key)
	if !r[ki].Equal(key) {
		return fmt.Errorf("relational: table %q update cannot change key %s to %s", t.schema.Name, key, r[ki])
	}
	for i, v := range r {
		want := t.schema.Columns[i].Type
		got := TypeString
		if v.Kind() == constraint.KindNumber {
			got = TypeNumber
		}
		if got != want {
			return fmt.Errorf("relational: table %q column %q wants %s, got %s",
				t.schema.Name, t.schema.Columns[i].Name, want, got)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byKey[key.String()]
	if !ok {
		return fmt.Errorf("relational: table %q has no row with key %s", t.schema.Name, key)
	}
	t.rows[i] = append(Row(nil), r...)
	return nil
}

// Delete removes the row with the given key; it reports whether a row was
// removed. It fails silently (false) on keyless tables.
func (t *Table) Delete(key constraint.Value) bool {
	if t.byKey == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byKey[key.String()]
	if !ok {
		return false
	}
	last := len(t.rows) - 1
	if i != last {
		// Move the last row into the hole and fix its index.
		t.rows[i] = t.rows[last]
		ki := t.schema.ColIndex(t.schema.Key)
		t.byKey[t.rows[i][ki].String()] = i
	}
	t.rows[last] = nil
	t.rows = t.rows[:last]
	delete(t.byKey, key.String())
	return true
}
