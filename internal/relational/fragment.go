package relational

import (
	"fmt"
	"strings"

	"infosleuth/internal/constraint"
)

// VerticalFragment projects a table onto the key column plus the listed
// columns, producing a new table named name. The paper's VF query streams
// run over classes split this way across resource agents; the MRQ agent
// reassembles full tuples by joining fragments on the key.
func VerticalFragment(src *Table, name string, cols []string) (*Table, error) {
	s := src.Schema()
	if s.Key == "" {
		return nil, fmt.Errorf("relational: vertical fragmentation of %q requires a key column", s.Name)
	}
	outCols := []Column{s.Columns[s.ColIndex(s.Key)]}
	idx := []int{s.ColIndex(s.Key)}
	for _, c := range cols {
		i := s.ColIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("relational: vertical fragment column %q not in %q", c, s.Name)
		}
		if strings.EqualFold(c, s.Key) {
			continue
		}
		outCols = append(outCols, s.Columns[i])
		idx = append(idx, i)
	}
	frag, err := NewTable(Schema{Name: name, Columns: outCols, Key: s.Key})
	if err != nil {
		return nil, err
	}
	var insertErr error
	src.Scan(func(r Row) bool {
		out := make(Row, len(idx))
		for j, i := range idx {
			out[j] = r[i]
		}
		if err := frag.Insert(out); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	return frag, nil
}

// HorizontalFragment selects the rows of a table satisfying the constraint
// set into a new table named name with the same schema. The constraints are
// evaluated against "table.column" records of the *source* table so that
// advertised constraints like "patient.patient_age between 43 and 75" carve
// the fragment directly.
func HorizontalFragment(src *Table, name string, cs *constraint.Set) (*Table, error) {
	s := src.Schema()
	frag, err := NewTable(Schema{Name: name, Columns: s.Columns, Key: s.Key})
	if err != nil {
		return nil, err
	}
	var insertErr error
	src.Scan(func(r Row) bool {
		if cs.Matches(src.Record(r)) {
			if err := frag.Insert(r); err != nil {
				insertErr = err
				return false
			}
		}
		return true
	})
	if insertErr != nil {
		return nil, insertErr
	}
	return frag, nil
}

// RangeBounds returns the observed [min, max] of a numeric column, useful
// for deriving the constraint a fragment should advertise. ok is false for
// an empty table or non-numeric column.
func RangeBounds(t *Table, col string) (lo, hi float64, ok bool) {
	i := t.Schema().ColIndex(col)
	if i < 0 {
		return 0, 0, false
	}
	first := true
	t.Scan(func(r Row) bool {
		v := r[i]
		if v.Kind() != constraint.KindNumber {
			return true
		}
		x := v.Number()
		if first {
			lo, hi, ok, first = x, x, true, false
			return true
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		return true
	})
	return lo, hi, ok
}
