package relational

import (
	"fmt"

	"infosleuth/internal/constraint"
	"infosleuth/internal/stats"
)

// Num and Str are re-exported constructors so generator call sites read
// naturally without importing constraint directly.
var (
	// Num builds a numeric value.
	Num = constraint.Num
	// Str builds a string value.
	Str = constraint.Str
)

// GenerateHealthcare fills a database with the Section 2.4 healthcare
// domain: patient, diagnosis and hospital_stay tables, deterministically
// from the seed. Every patient has one diagnosis; every third patient has a
// hospital stay.
func GenerateHealthcare(db *Database, nPatients int, seed int64) error {
	src := stats.NewSource(seed)
	regions := []string{"Dallas", "Houston", "Austin", "El Paso"}
	codes := []string{"40W", "41W", "12K", "77C", "09A"}

	patients, err := db.Create(Schema{
		Name: "patient",
		Columns: []Column{
			{Name: "patient_id", Type: TypeString},
			{Name: "patient_age", Type: TypeNumber},
			{Name: "patient_name", Type: TypeString},
			{Name: "region", Type: TypeString},
		},
		Key: "patient_id",
	})
	if err != nil {
		return err
	}
	diagnoses, err := db.Create(Schema{
		Name: "diagnosis",
		Columns: []Column{
			{Name: "diagnosis_code", Type: TypeString},
			{Name: "patient_id", Type: TypeString},
			{Name: "diagnosis_date", Type: TypeString},
			{Name: "cost", Type: TypeNumber},
		},
	})
	if err != nil {
		return err
	}
	stays, err := db.Create(Schema{
		Name: "hospital_stay",
		Columns: []Column{
			{Name: "stay_id", Type: TypeString},
			{Name: "patient_id", Type: TypeString},
			{Name: "procedure", Type: TypeString},
			{Name: "cost", Type: TypeNumber},
			{Name: "days", Type: TypeNumber},
		},
		Key: "stay_id",
	})
	if err != nil {
		return err
	}

	procedures := []string{"caesarian", "appendectomy", "bypass", "hip replacement"}
	for i := 0; i < nPatients; i++ {
		pid := fmt.Sprintf("P%05d", i)
		age := float64(src.Intn(90) + 1)
		if err := patients.Insert(Row{
			Str(pid), Num(age),
			Str(fmt.Sprintf("Patient %d", i)),
			Str(regions[src.Intn(len(regions))]),
		}); err != nil {
			return err
		}
		if err := diagnoses.Insert(Row{
			Str(codes[src.Intn(len(codes))]), Str(pid),
			Str(fmt.Sprintf("1998-%02d-%02d", src.Intn(12)+1, src.Intn(28)+1)),
			Num(float64(src.Intn(9000) + 500)),
		}); err != nil {
			return err
		}
		if i%3 == 0 {
			if err := stays.Insert(Row{
				Str(fmt.Sprintf("S%05d", i)), Str(pid),
				Str(procedures[src.Intn(len(procedures))]),
				Num(float64(src.Intn(40000) + 2000)),
				Num(float64(src.Intn(14) + 1)),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// GenericSchema returns the schema for one of the paper's C1..C6 toy
// classes (Figures 5-7): a string key `id` and numeric attributes a..d.
func GenericSchema(class string) Schema {
	return Schema{
		Name: class,
		Columns: []Column{
			{Name: "id", Type: TypeString},
			{Name: "a", Type: TypeNumber},
			{Name: "b", Type: TypeNumber},
			{Name: "c", Type: TypeNumber},
			{Name: "d", Type: TypeNumber},
		},
		Key: "id",
	}
}

// GenerateGeneric fills a database with n rows of one toy class. Row keys
// embed the class name so rows from different resources are
// distinguishable after the MRQ agent unions them.
func GenerateGeneric(db *Database, class string, n int, seed int64) (*Table, error) {
	src := stats.NewSource(seed)
	t, err := db.Create(GenericSchema(class))
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := t.Insert(Row{
			Str(fmt.Sprintf("%s-%06d", class, i)),
			Num(float64(src.Intn(1000))),
			Num(float64(src.Intn(1000))),
			Num(float64(src.Intn(1000))),
			Num(float64(src.Intn(1000))),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
