// Package relational is the storage substrate behind InfoSleuth resource
// agents: an in-memory relational store with typed columns, primary keys,
// and the horizontal/vertical fragmentation and class-hierarchy layouts
// that the paper's VF, CH and FH query streams exercise (Section 5.1).
//
// Values reuse the constraint package's Value type so that advertised data
// constraints can be checked directly against stored rows.
package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"infosleuth/internal/constraint"
)

// ColType is a column's data type.
type ColType int

// Column types.
const (
	TypeNumber ColType = iota
	TypeString
)

// String names the type.
func (t ColType) String() string {
	if t == TypeNumber {
		return "number"
	}
	return "string"
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its name, columns and key column.
type Schema struct {
	Name    string
	Columns []Column
	// Key names the primary-key column; "" means no key (duplicates
	// allowed, updates by key unsupported).
	Key string
}

// ColIndex returns the index of a column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColNames returns the column names in order.
func (s Schema) ColNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Validate checks schema well-formedness.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relational: schema missing table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relational: table %q has no columns", s.Name)
	}
	seen := make(map[string]bool)
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if c.Name == "" {
			return fmt.Errorf("relational: table %q has an unnamed column", s.Name)
		}
		if seen[lc] {
			return fmt.Errorf("relational: table %q duplicates column %q", s.Name, c.Name)
		}
		seen[lc] = true
	}
	if s.Key != "" && s.ColIndex(s.Key) < 0 {
		return fmt.Errorf("relational: table %q key %q is not a column", s.Name, s.Key)
	}
	return nil
}

// Row is one tuple, positionally matching the schema's columns.
type Row []constraint.Value

// Table is a mutable relation. It is safe for concurrent use.
type Table struct {
	schema Schema

	mu   sync.RWMutex
	rows []Row
	// byKey indexes row position by key value when a key is declared.
	byKey map[string]int
}

// NewTable creates an empty table for the schema.
func NewTable(s Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cp := s
	cp.Columns = append([]Column(nil), s.Columns...)
	t := &Table{schema: cp}
	if cp.Key != "" {
		t.byKey = make(map[string]int)
	}
	return t, nil
}

// MustNewTable is NewTable, panicking on error.
func MustNewTable(s Schema) *Table {
	t, err := NewTable(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row after type-checking it against the schema. Inserting
// a duplicate key fails.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.schema.Columns) {
		return fmt.Errorf("relational: table %q expects %d values, got %d", t.schema.Name, len(t.schema.Columns), len(r))
	}
	for i, v := range r {
		want := t.schema.Columns[i].Type
		got := TypeString
		if v.Kind() == constraint.KindNumber {
			got = TypeNumber
		}
		if got != want {
			return fmt.Errorf("relational: table %q column %q wants %s, got %s (%s)",
				t.schema.Name, t.schema.Columns[i].Name, want, got, v)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byKey != nil {
		k := r[t.schema.ColIndex(t.schema.Key)].String()
		if _, dup := t.byKey[k]; dup {
			return fmt.Errorf("relational: table %q duplicate key %s", t.schema.Name, k)
		}
		t.byKey[k] = len(t.rows)
	}
	t.rows = append(t.rows, append(Row(nil), r...))
	return nil
}

// MustInsert is Insert, panicking on error; for generators and tests.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// Lookup returns the row with the given key value, if any.
func (t *Table) Lookup(key constraint.Value) (Row, bool) {
	if t.byKey == nil {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.byKey[key.String()]
	if !ok {
		return nil, false
	}
	return append(Row(nil), t.rows[i]...), true
}

// Scan calls fn for each row (a copy); returning false stops the scan.
func (t *Table) Scan(fn func(Row) bool) {
	t.mu.RLock()
	rows := t.rows
	t.mu.RUnlock()
	for _, r := range rows {
		if !fn(append(Row(nil), r...)) {
			return
		}
	}
}

// Rows returns a copy of all rows.
func (t *Table) Rows() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, len(t.rows))
	for i, r := range t.rows {
		out[i] = append(Row(nil), r...)
	}
	return out
}

// Record converts a row into a field→value map using "table.column" keys
// (and bare "column" keys), the form constraint.Set.Matches consumes.
func (t *Table) Record(r Row) map[string]constraint.Value {
	out := make(map[string]constraint.Value, 2*len(r))
	for i, c := range t.schema.Columns {
		if i >= len(r) {
			break
		}
		lc := strings.ToLower(c.Name)
		out[lc] = r[i]
		out[strings.ToLower(t.schema.Name)+"."+lc] = r[i]
	}
	return out
}

// Database is a named collection of tables. It is safe for concurrent use.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Create adds an empty table; it fails on duplicate names.
func (db *Database) Create(s Schema) (*Table, error) {
	t, err := NewTable(s)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("relational: table %q already exists", s.Name)
	}
	db.tables[key] = t
	return t, nil
}

// MustCreate is Create, panicking on error.
func (db *Database) MustCreate(s Schema) *Table {
	t, err := db.Create(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Attach registers an existing table (e.g. a fragment); it fails on
// duplicate names.
func (db *Database) Attach(t *Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(t.Name())
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("relational: table %q already exists", t.Name())
	}
	db.tables[key] = t
	return nil
}

// Table returns a table by name (case-insensitive).
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the table names in sorted order.
func (db *Database) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

// TotalRows returns the row count across all tables; the simulator uses it
// to size a resource's data.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += t.Len()
	}
	return n
}
