package relational

import (
	"testing"
)

func mutTable(t *testing.T) *Table {
	t.Helper()
	tbl := MustNewTable(Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TypeString},
			{Name: "v", Type: TypeNumber},
		},
		Key: "id",
	})
	for i, id := range []string{"a", "b", "c"} {
		tbl.MustInsert(Row{Str(id), Num(float64(i * 10))})
	}
	return tbl
}

func TestUpdate(t *testing.T) {
	tbl := mutTable(t)
	if err := tbl.Update(Str("b"), Row{Str("b"), Num(99)}); err != nil {
		t.Fatal(err)
	}
	r, ok := tbl.Lookup(Str("b"))
	if !ok || !r[1].Equal(Num(99)) {
		t.Errorf("updated row = %v %v", r, ok)
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestUpdateErrors(t *testing.T) {
	tbl := mutTable(t)
	if err := tbl.Update(Str("zz"), Row{Str("zz"), Num(1)}); err == nil {
		t.Error("missing key should fail")
	}
	if err := tbl.Update(Str("a"), Row{Str("a")}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := tbl.Update(Str("a"), Row{Str("a"), Str("not a number")}); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := tbl.Update(Str("a"), Row{Str("b"), Num(1)}); err == nil {
		t.Error("key change should fail")
	}
	keyless := MustNewTable(Schema{Name: "k", Columns: []Column{{Name: "x", Type: TypeNumber}}})
	if err := keyless.Update(Num(1), Row{Num(1)}); err == nil {
		t.Error("keyless update should fail")
	}
}

func TestDelete(t *testing.T) {
	tbl := mutTable(t)
	if !tbl.Delete(Str("a")) {
		t.Fatal("delete missed existing key")
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if _, ok := tbl.Lookup(Str("a")); ok {
		t.Error("deleted row still visible")
	}
	// The swapped-in row remains addressable.
	r, ok := tbl.Lookup(Str("c"))
	if !ok || !r[1].Equal(Num(20)) {
		t.Errorf("post-delete lookup of c = %v %v", r, ok)
	}
	if tbl.Delete(Str("a")) {
		t.Error("double delete should report false")
	}
	// Delete the last row.
	tbl.Delete(Str("b"))
	tbl.Delete(Str("c"))
	if tbl.Len() != 0 {
		t.Errorf("Len = %d after emptying", tbl.Len())
	}
	// Reinsert after delete works (key index cleaned).
	tbl.MustInsert(Row{Str("a"), Num(1)})
	if tbl.Len() != 1 {
		t.Error("reinsert after delete failed")
	}
}

func TestDeleteKeyless(t *testing.T) {
	keyless := MustNewTable(Schema{Name: "k", Columns: []Column{{Name: "x", Type: TypeNumber}}})
	keyless.MustInsert(Row{Num(1)})
	if keyless.Delete(Num(1)) {
		t.Error("keyless delete should report false")
	}
}
