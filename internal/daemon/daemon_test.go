package daemon

import (
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"infosleuth/internal/telemetry"
	"infosleuth/internal/telemetry/provenance"
	"infosleuth/internal/transport"
)

func parse(t *testing.T, args ...string) *Options {
	t.Helper()
	var o Options
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &o
}

func TestDefaultFlagsYieldNilPolicy(t *testing.T) {
	if p := parse(t).CallPolicy(); p != nil {
		t.Errorf("default flags built a policy: %+v", p)
	}
}

func TestResilienceFlagsBuildPolicy(t *testing.T) {
	cases := [][]string{
		{"-retry-max-attempts", "3"},
		{"-breaker-threshold", "2"},
		{"-retry-max-attempts", "3", "-breaker-threshold", "2", "-retry-base-delay", "5ms"},
	}
	for _, args := range cases {
		if parse(t, args...).CallPolicy() == nil {
			t.Errorf("args %v built no policy", args)
		}
	}
}

func TestServeTelemetryDisabledIsNoOp(t *testing.T) {
	o := parse(t)
	stop, err := o.ServeTelemetry(slog.New(slog.NewTextHandler(io.Discard, nil)), nil)
	if err != nil {
		t.Fatal(err)
	}
	stop() // must not panic
}

func TestObservabilityFlags(t *testing.T) {
	o := parse(t, "-slo", "mrq.run=25ms:0.05", "-fleet", "-fleet-interval", "2s")
	if o.SLO != "mrq.run=25ms:0.05" {
		t.Errorf("SLO = %q", o.SLO)
	}
	if !o.Fleet {
		t.Error("Fleet not set")
	}
	if o.FleetInterval != 2*time.Second {
		t.Errorf("FleetInterval = %v", o.FleetInterval)
	}
}

func TestServeTelemetryBadSLOSpec(t *testing.T) {
	// ServeTelemetry installs the global recorders before it parses -slo;
	// put them back so the failure path leaves no observer behind.
	defer telemetry.SetSpanRecorder(telemetry.SetSpanRecorder(nil))
	defer provenance.SetRecorder(provenance.SetRecorder(nil))
	o := parse(t, "-metrics-addr", "127.0.0.1:0", "-slo", "mrq.run=banana")
	stop, err := o.ServeTelemetry(slog.New(slog.NewTextHandler(io.Discard, nil)), nil)
	if err == nil {
		stop()
		t.Fatal("bad -slo spec accepted")
	}
}

func TestStartFleetDefaultsTCPAddress(t *testing.T) {
	// The daemons pass a bare &transport.TCP{} with no listen address;
	// StartFleet must default it to an ephemeral loopback port rather
	// than fail the monitor agent's Listen (regression: brokerd -fleet
	// died with `TCP transport requires tcp:// address, got ""`).
	o := parse(t, "-fleet", "-fleet-interval", "1h")
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	fa, stop, err := o.StartFleet(logger, FleetConfig{
		Owner: "testd", Transport: &transport.TCP{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if fa == nil {
		t.Fatal("StartFleet returned no agent")
	}
	// Once the monitor is up the /fleet handler serves it.
	rr := httptest.NewRecorder()
	o.fleetHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/fleet", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("status = %d, want %d", rr.Code, http.StatusOK)
	}
}

func TestFleetHandlerBeforeStartFleet(t *testing.T) {
	// /fleet is mounted at ServeTelemetry time, before the daemon's
	// transport (and thus the monitor agent) exists; until StartFleet runs
	// the handler must answer 503 rather than panic.
	o := parse(t, "-fleet")
	rr := httptest.NewRecorder()
	o.fleetHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/fleet", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want %d", rr.Code, http.StatusServiceUnavailable)
	}
}
