package daemon

import (
	"flag"
	"io"
	"log/slog"
	"testing"
)

func parse(t *testing.T, args ...string) *Options {
	t.Helper()
	var o Options
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &o
}

func TestDefaultFlagsYieldNilPolicy(t *testing.T) {
	if p := parse(t).CallPolicy(); p != nil {
		t.Errorf("default flags built a policy: %+v", p)
	}
}

func TestResilienceFlagsBuildPolicy(t *testing.T) {
	cases := [][]string{
		{"-retry-max-attempts", "3"},
		{"-breaker-threshold", "2"},
		{"-retry-max-attempts", "3", "-breaker-threshold", "2", "-retry-base-delay", "5ms"},
	}
	for _, args := range cases {
		if parse(t, args...).CallPolicy() == nil {
			t.Errorf("args %v built no policy", args)
		}
	}
}

func TestServeTelemetryDisabledIsNoOp(t *testing.T) {
	o := parse(t)
	stop, err := o.ServeTelemetry(slog.New(slog.NewTextHandler(io.Discard, nil)), nil)
	if err != nil {
		t.Fatal(err)
	}
	stop() // must not panic
}
