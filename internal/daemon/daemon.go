// Package daemon consolidates the flag wiring every InfoSleuth daemon
// repeats: structured logging, the telemetry/health endpoint, and the
// outgoing-call resilience policy. A daemon embeds one Options, registers
// its flags before flag.Parse, and afterwards asks for the pieces it needs:
//
//	var opts daemon.Options
//	opts.AddFlags(flag.CommandLine)
//	flag.Parse()
//	logger := opts.Setup("brokerd")
//	stop, err := opts.ServeTelemetry(logger, readiness)
//	cfg.CallPolicy = opts.CallPolicy()
//
// The resilience flags default to the paper-faithful single-shot behavior
// (one attempt, no breakers), in which case CallPolicy returns nil and the
// agents behave exactly as before the resilience layer existed.
package daemon

import (
	"flag"
	"log/slog"
	"time"

	"infosleuth/internal/resilience"
	"infosleuth/internal/stats"
	"infosleuth/internal/telemetry"
	"infosleuth/internal/telemetry/logging"
	"infosleuth/internal/telemetry/provenance"
	"infosleuth/internal/telemetry/recorder"
)

// Options holds the daemon-wide flag values.
type Options struct {
	// MetricsAddr serves Prometheus /metrics, /traces and health probes
	// when non-empty.
	MetricsAddr string
	// Pprof exposes net/http/pprof under /debug/pprof on MetricsAddr.
	Pprof bool

	// RetryMaxAttempts is the total attempts per outgoing call; <= 1
	// keeps calls single-shot.
	RetryMaxAttempts int
	// RetryBaseDelay is the full-jitter backoff base.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff.
	RetryMaxDelay time.Duration
	// RetryBudget caps the retry token bucket; negative disables it.
	RetryBudget int
	// BreakerThreshold is the consecutive failures that open a peer's
	// circuit; 0 disables circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before a
	// half-open probe.
	BreakerCooldown time.Duration

	// Log configures structured logging.
	Log logging.Options
}

// AddFlags registers every shared daemon flag on fs.
func (o *Options) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "",
		"serve Prometheus /metrics, /traces and health probes here (e.g. :9090); empty disables")
	fs.BoolVar(&o.Pprof, "pprof", false,
		"expose net/http/pprof under /debug/pprof on the metrics address")
	fs.IntVar(&o.RetryMaxAttempts, "retry-max-attempts", 1,
		"total attempts per outgoing call (1 = single-shot, no retries)")
	fs.DurationVar(&o.RetryBaseDelay, "retry-base-delay", 25*time.Millisecond,
		"full-jitter retry backoff base")
	fs.DurationVar(&o.RetryMaxDelay, "retry-max-delay", 2*time.Second,
		"retry backoff cap")
	fs.IntVar(&o.RetryBudget, "retry-budget", 64,
		"retry token bucket size (successes slowly refill it; negative = unlimited)")
	fs.IntVar(&o.BreakerThreshold, "breaker-threshold", 0,
		"consecutive call failures that open a peer's circuit (0 disables breakers)")
	fs.DurationVar(&o.BreakerCooldown, "breaker-cooldown", 5*time.Second,
		"how long an open circuit rejects calls before a half-open probe")
	o.Log.AddFlags(fs)
}

// Setup builds the daemon's logger from the logging flags.
func (o *Options) Setup(component string) *slog.Logger {
	return logging.Setup(component, o.Log)
}

// CallPolicy builds the resilience policy the flags describe, or nil when
// both retries and circuit breaking are left off — the single-shot
// configuration every Section 5 experiment pins.
func (o *Options) CallPolicy() *resilience.Policy {
	if o.RetryMaxAttempts <= 1 && o.BreakerThreshold <= 0 {
		return nil
	}
	return resilience.New(resilience.Options{
		MaxAttempts:      o.RetryMaxAttempts,
		BaseDelay:        o.RetryBaseDelay,
		MaxDelay:         o.RetryMaxDelay,
		RetryBudget:      o.RetryBudget,
		BreakerThreshold: o.BreakerThreshold,
		BreakerCooldown:  o.BreakerCooldown,
	})
}

// ServeTelemetry starts the metrics/health endpoint when -metrics-addr is
// set: a conversation flight recorder behind /traces (with explain reports
// at /traces/{id}/explain), decision provenance recording, rolling
// per-peer query statistics behind /stats, runtime metrics, the supplied
// readiness check behind /readyz, and optionally pprof. The returned stop
// function closes the endpoint (a no-op when disabled).
func (o *Options) ServeTelemetry(logger *slog.Logger, ready func() error) (func(), error) {
	if o.MetricsAddr == "" {
		return func() {}, nil
	}
	rec := recorder.New(recorder.Options{})
	telemetry.SetSpanRecorder(rec)
	provenance.SetRecorder(rec)
	telemetry.Default.EnableRuntimeMetrics()
	opts := []telemetry.ServeOption{
		telemetry.WithHandler("/traces", rec.Handler()),
		telemetry.WithHandler("/traces/", rec.Handler()),
		telemetry.WithHandler("/stats", stats.Queries.Handler()),
	}
	if ready != nil {
		opts = append(opts, telemetry.WithReadiness(ready))
	}
	if o.Pprof {
		opts = append(opts, telemetry.WithPprof())
	}
	srv, err := telemetry.Serve(o.MetricsAddr, telemetry.Default, opts...)
	if err != nil {
		return nil, err
	}
	logger.Info("metrics endpoint up", "url", "http://"+srv.Addr()+"/metrics")
	return func() { srv.Close() }, nil
}
