// Package daemon consolidates the flag wiring every InfoSleuth daemon
// repeats: structured logging, the telemetry/health endpoint, and the
// outgoing-call resilience policy. A daemon embeds one Options, registers
// its flags before flag.Parse, and afterwards asks for the pieces it needs:
//
//	var opts daemon.Options
//	opts.AddFlags(flag.CommandLine)
//	flag.Parse()
//	logger := opts.Setup("brokerd")
//	stop, err := opts.ServeTelemetry(logger, readiness)
//	cfg.CallPolicy = opts.CallPolicy()
//
// The resilience flags default to the paper-faithful single-shot behavior
// (one attempt, no breakers), in which case CallPolicy returns nil and the
// agents behave exactly as before the resilience layer existed.
package daemon

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"infosleuth/internal/fleet"
	"infosleuth/internal/resilience"
	"infosleuth/internal/slo"
	"infosleuth/internal/stats"
	"infosleuth/internal/telemetry"
	"infosleuth/internal/telemetry/logging"
	"infosleuth/internal/telemetry/provenance"
	"infosleuth/internal/telemetry/recorder"
	"infosleuth/internal/transport"
)

// Options holds the daemon-wide flag values.
type Options struct {
	// MetricsAddr serves Prometheus /metrics, /traces and health probes
	// when non-empty.
	MetricsAddr string
	// Pprof exposes net/http/pprof under /debug/pprof on MetricsAddr.
	Pprof bool

	// SLO declares per-operation service-level objectives
	// ("op=latency[:budget]", comma-separated; see slo.ParseObjectives).
	// Burn rates appear at /slo and as infosleuth_slo_* gauges.
	SLO string
	// Fleet runs a fleet monitor agent alongside the daemon's own agent:
	// it discovers the community through the brokers, polls every member
	// for telemetry snapshots, and serves the aggregate at /fleet.
	Fleet bool
	// FleetInterval is the monitor's poll cadence.
	FleetInterval time.Duration

	// fleetAgent holds the running fleet monitor (set by StartFleet) so
	// the /fleet handler mounted at ServeTelemetry time can reach it.
	fleetAgent atomic.Pointer[fleet.Agent]

	// RetryMaxAttempts is the total attempts per outgoing call; <= 1
	// keeps calls single-shot.
	RetryMaxAttempts int
	// RetryBaseDelay is the full-jitter backoff base.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff.
	RetryMaxDelay time.Duration
	// RetryBudget caps the retry token bucket; negative disables it.
	RetryBudget int
	// BreakerThreshold is the consecutive failures that open a peer's
	// circuit; 0 disables circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before a
	// half-open probe.
	BreakerCooldown time.Duration

	// Log configures structured logging.
	Log logging.Options
}

// AddFlags registers every shared daemon flag on fs.
func (o *Options) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "",
		"serve Prometheus /metrics, /traces and health probes here (e.g. :9090); empty disables")
	fs.BoolVar(&o.Pprof, "pprof", false,
		"expose net/http/pprof under /debug/pprof on the metrics address")
	fs.IntVar(&o.RetryMaxAttempts, "retry-max-attempts", 1,
		"total attempts per outgoing call (1 = single-shot, no retries)")
	fs.DurationVar(&o.RetryBaseDelay, "retry-base-delay", 25*time.Millisecond,
		"full-jitter retry backoff base")
	fs.DurationVar(&o.RetryMaxDelay, "retry-max-delay", 2*time.Second,
		"retry backoff cap")
	fs.IntVar(&o.RetryBudget, "retry-budget", 64,
		"retry token bucket size (successes slowly refill it; negative = unlimited)")
	fs.IntVar(&o.BreakerThreshold, "breaker-threshold", 0,
		"consecutive call failures that open a peer's circuit (0 disables breakers)")
	fs.DurationVar(&o.BreakerCooldown, "breaker-cooldown", 5*time.Second,
		"how long an open circuit rejects calls before a half-open probe")
	fs.StringVar(&o.SLO, "slo", "",
		"per-operation SLOs as op=latency[:budget],... (e.g. mrq.run=250ms:0.01); served at /slo")
	fs.BoolVar(&o.Fleet, "fleet", false,
		"run a fleet monitor agent that polls the community for telemetry; served at /fleet")
	fs.DurationVar(&o.FleetInterval, "fleet-interval", fleet.DefaultPollInterval,
		"fleet monitor poll cadence")
	o.Log.AddFlags(fs)
}

// Setup builds the daemon's logger from the logging flags.
func (o *Options) Setup(component string) *slog.Logger {
	return logging.Setup(component, o.Log)
}

// CallPolicy builds the resilience policy the flags describe, or nil when
// both retries and circuit breaking are left off — the single-shot
// configuration every Section 5 experiment pins.
func (o *Options) CallPolicy() *resilience.Policy {
	if o.RetryMaxAttempts <= 1 && o.BreakerThreshold <= 0 {
		return nil
	}
	return resilience.New(resilience.Options{
		MaxAttempts:      o.RetryMaxAttempts,
		BaseDelay:        o.RetryBaseDelay,
		MaxDelay:         o.RetryMaxDelay,
		RetryBudget:      o.RetryBudget,
		BreakerThreshold: o.BreakerThreshold,
		BreakerCooldown:  o.BreakerCooldown,
	})
}

// ServeTelemetry starts the metrics/health endpoint when -metrics-addr is
// set: a conversation flight recorder behind /traces (with explain reports
// at /traces/{id}/explain), the tail-sampled slow-query log behind
// /slowlog, decision provenance recording, rolling per-peer query
// statistics behind /stats, SLO burn rates behind /slo (with -slo),
// the fleet dashboard behind /fleet (with -fleet, once StartFleet runs),
// runtime metrics, the supplied readiness check behind /readyz, and
// optionally pprof. The returned stop function closes the endpoint (a
// no-op when disabled).
//
// Installing the recorder turns on always-on tracing with tail sampling:
// every root operation is observed, and the slow/failed/degraded ones pin
// their traces into the slowlog. Without -metrics-addr none of this is
// active — the Section 5 experiments run with zero observers installed.
//
// extra mounts daemon-specific handlers on the same endpoint (resourced
// adds its subscription pipeline report at /subs).
func (o *Options) ServeTelemetry(logger *slog.Logger, ready func() error, extra ...telemetry.ServeOption) (func(), error) {
	if o.MetricsAddr == "" {
		return func() {}, nil
	}
	rec := recorder.New(recorder.Options{})
	telemetry.SetSpanRecorder(rec)
	provenance.SetRecorder(rec)
	telemetry.Default.EnableRuntimeMetrics()
	opts := []telemetry.ServeOption{
		telemetry.WithHandler("/traces", rec.Handler()),
		telemetry.WithHandler("/traces/", rec.Handler()),
		telemetry.WithHandler("/stats", stats.Queries.Handler()),
		telemetry.WithHandler("/slowlog", rec.SlowlogHandler()),
	}
	observers := telemetry.MultiRootObserver{rec}
	if o.SLO != "" {
		objs, err := slo.ParseObjectives(o.SLO)
		if err != nil {
			return nil, err
		}
		tracker := slo.NewTracker(objs)
		tracker.Publish(telemetry.Default)
		observers = append(observers, tracker)
		opts = append(opts, telemetry.WithHandler("/slo", tracker.Handler()))
	}
	telemetry.SetRootObserver(observers)
	if o.Fleet {
		opts = append(opts, telemetry.WithHandler("/fleet", o.fleetHandler()))
	}
	if ready != nil {
		opts = append(opts, telemetry.WithReadiness(ready))
	}
	if o.Pprof {
		opts = append(opts, telemetry.WithPprof())
	}
	opts = append(opts, extra...)
	srv, err := telemetry.Serve(o.MetricsAddr, telemetry.Default, opts...)
	if err != nil {
		return nil, err
	}
	logger.Info("metrics endpoint up", "url", "http://"+srv.Addr()+"/metrics")
	return func() { srv.Close() }, nil
}

// fleetHandler delegates /fleet to the monitor agent once StartFleet has
// run; until then it reports 503 (the endpoint is mounted before the
// daemon's transport exists).
func (o *Options) fleetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fa := o.fleetAgent.Load()
		if fa == nil {
			http.Error(w, "fleet monitor not running yet", http.StatusServiceUnavailable)
			return
		}
		fa.Handler().ServeHTTP(w, req)
	})
}

// FleetConfig seeds StartFleet with the daemon-specific pieces the flags
// cannot know: the transport and the broker addresses.
type FleetConfig struct {
	// Name names the monitor agent; empty derives "<owner> fleet monitor".
	Name string
	// Owner is the daemon's own agent name, used to derive Name.
	Owner string
	// Transport and KnownBrokers mirror the daemon's own agent.
	Transport    transport.Transport
	KnownBrokers []string
	// Address is where the monitor listens for replies; empty picks an
	// ephemeral loopback port ("tcp://127.0.0.1:0") on the TCP transport
	// — the monitor only needs to be reachable by the agents it polls,
	// not by operators.
	Address string
}

// StartFleet runs the fleet monitor agent when -fleet is set: it starts
// and advertises the monitor (type "monitor", discoverable like any other
// member), performs an initial discover+poll, then polls on the jittered
// -fleet-interval cadence. The returned stop function halts polling and
// the agent. A no-op returning (nil, func(){}, nil) when -fleet is off.
func (o *Options) StartFleet(logger *slog.Logger, cfg FleetConfig) (*fleet.Agent, func(), error) {
	if !o.Fleet {
		return nil, func() {}, nil
	}
	name := cfg.Name
	if name == "" {
		name = cfg.Owner + " fleet monitor"
	}
	if _, tcp := cfg.Transport.(*transport.TCP); tcp && cfg.Address == "" {
		cfg.Address = "tcp://127.0.0.1:0"
	}
	fa, err := fleet.New(fleet.Config{
		Name:         name,
		Address:      cfg.Address,
		Transport:    cfg.Transport,
		KnownBrokers: cfg.KnownBrokers,
		CallPolicy:   o.CallPolicy(),
		PollInterval: o.FleetInterval,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fleet monitor: %w", err)
	}
	if err := fa.Start(); err != nil {
		return nil, nil, fmt.Errorf("fleet monitor: %w", err)
	}
	ctx := context.Background()
	if _, err := fa.Advertise(ctx); err != nil {
		logger.Warn("fleet monitor advertising failed (will keep polling)", "err", err)
	}
	if err := fa.Discover(ctx); err != nil {
		logger.Warn("fleet discovery failed (will retry on next poll)", "err", err)
	} else {
		fa.PollOnce(ctx)
	}
	stopPoll := fa.StartPolling()
	o.fleetAgent.Store(fa)
	logger.Info("fleet monitor up", "name", fa.Name(), "interval", o.FleetInterval)
	return fa, func() {
		stopPoll()
		fa.Stop()
	}, nil
}
