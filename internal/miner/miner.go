// Package miner implements the data mining agent of the paper's Figure 1:
// the core agent that analyzes gathered information "using statistical
// data mining techniques and/or logical inferencing". It gathers data
// through the community's multiresource query agents (located via the
// broker, like everything else) and runs one of three analyses:
//
//   - deviation: flag rows whose value deviates from the mean by more than
//     a z-score threshold — the machinery behind the paper's "notify me
//     when the cost ... significantly deviates from the expected cost".
//   - trend: least-squares slope of a value over row order — "noticing
//     patterns in how information is changing that may indicate new
//     trends".
//   - datalog: logical inferencing — gathered rows become facts, a
//     caller-supplied LDL-style rule program derives conclusions.
package miner

import (
	"context"
	"fmt"
	"math"
	"time"

	"infosleuth/internal/agent"
	"infosleuth/internal/constraint"
	"infosleuth/internal/datalog"
	"infosleuth/internal/kqml"
	"infosleuth/internal/ontology"
	"infosleuth/internal/relational"
	"infosleuth/internal/resilience"
	"infosleuth/internal/sqlparse"
	"infosleuth/internal/stats"
	"infosleuth/internal/transport"
)

// Kind selects the analysis.
type Kind string

// Analysis kinds.
const (
	KindDeviation Kind = "deviation"
	KindTrend     Kind = "trend"
	KindDatalog   Kind = "datalog"
)

// Request is a mining task: a data-gathering SQL query plus the analysis
// to run over its result.
type Request struct {
	Kind Kind `json:"kind"`
	// SQL gathers the data (routed through an MRQ agent).
	SQL string `json:"sql"`
	// Column names the numeric column analyzed (deviation and trend).
	Column string `json:"column,omitempty"`
	// Threshold is the z-score cutoff for deviation; 0 means 3.
	Threshold float64 `json:"threshold,omitempty"`
	// Program is the LDL-style rule program for datalog analysis.
	// Gathered rows are asserted as facts row(v1, v2, ...) in result
	// column order before evaluation.
	Program string `json:"program,omitempty"`
	// Goal names the predicate whose derived facts are reported.
	Goal string `json:"goal,omitempty"`
}

// Outlier is one flagged row of a deviation analysis.
type Outlier struct {
	Row    []string `json:"row"`
	Value  float64  `json:"value"`
	ZScore float64  `json:"z_score"`
}

// Report is the analysis result.
type Report struct {
	Kind   Kind   `json:"kind"`
	Column string `json:"column,omitempty"`
	// N is the number of gathered rows.
	N int `json:"n"`
	// Mean and StdDev summarize the analyzed column (deviation, trend).
	Mean   float64 `json:"mean,omitempty"`
	StdDev float64 `json:"std_dev,omitempty"`
	// Outliers are the flagged rows (deviation).
	Outliers []Outlier `json:"outliers,omitempty"`
	// Slope is the least-squares slope per row (trend), and Direction a
	// human-readable reading of it.
	Slope     float64 `json:"slope,omitempty"`
	Direction string  `json:"direction,omitempty"`
	// Derived holds the goal predicate's facts (datalog), one row of
	// arguments per fact.
	Derived [][]string `json:"derived,omitempty"`
}

// Config configures a mining agent.
type Config struct {
	Name         string
	Address      string
	Transport    transport.Transport
	KnownBrokers []string
	Redundancy   int
	CallTimeout  time.Duration
	// CallPolicy, when set, retries outgoing calls with backoff; nil
	// calls once.
	CallPolicy *resilience.Policy

	// Ontology names the domain mined.
	Ontology string
}

// Agent is a data mining agent.
type Agent struct {
	*agent.Base
	cfg Config
}

// New creates a mining agent; call Start, then Advertise.
func New(cfg Config) (*Agent, error) {
	if cfg.Ontology == "" {
		return nil, fmt.Errorf("miner: config missing Ontology")
	}
	base, err := agent.New(agent.Config{
		Name:         cfg.Name,
		Address:      cfg.Address,
		Transport:    cfg.Transport,
		KnownBrokers: cfg.KnownBrokers,
		Redundancy:   cfg.Redundancy,
		CallTimeout:  cfg.CallTimeout,
	}, agent.WithCallPolicy(cfg.CallPolicy))
	if err != nil {
		return nil, err
	}
	a := &Agent{Base: base, cfg: cfg}
	base.Handler = a.handle
	base.AdBuilder = a.buildAd
	return a, nil
}

func (a *Agent) buildAd(addr string) *ontology.Advertisement {
	return &ontology.Advertisement{
		Name:             a.cfg.Name,
		Address:          addr,
		Type:             ontology.TypeQuery,
		CommLanguages:    []string{ontology.LangKQML},
		ContentLanguages: []string{ontology.LangSQL2},
		Conversations:    []string{ontology.ConvAskAll},
		Capabilities:     []string{ontology.CapDataMining},
	}
}

func (a *Agent) handle(msg *kqml.Message) *kqml.Message {
	switch msg.Performative {
	case kqml.AskAll, kqml.AskOne:
		var req Request
		if err := msg.DecodeContent(&req); err != nil {
			return a.Reply(msg, kqml.Error, &kqml.SorryContent{Reason: "malformed mining request"})
		}
		rep, err := a.Mine(context.Background(), &req)
		if err != nil {
			return a.Reply(msg, kqml.Error, &kqml.SorryContent{Reason: err.Error()})
		}
		return a.Reply(msg, kqml.Tell, rep)
	default:
		return a.Reply(msg, kqml.Sorry, &kqml.SorryContent{
			Reason: fmt.Sprintf("mining agent does not handle %s", msg.Performative),
		})
	}
}

// Mine gathers the request's data through an MRQ agent and runs the
// analysis.
func (a *Agent) Mine(ctx context.Context, req *Request) (*Report, error) {
	res, err := a.gather(ctx, req.SQL)
	if err != nil {
		return nil, err
	}
	switch req.Kind {
	case KindDeviation:
		return deviation(res, req.Column, req.Threshold)
	case KindTrend:
		return trend(res, req.Column)
	case KindDatalog:
		return infer(res, req.Program, req.Goal)
	default:
		return nil, fmt.Errorf("miner: unknown analysis kind %q", req.Kind)
	}
}

// gather locates an MRQ agent via the brokers (the Figure 6 lookup) and
// submits the data query.
func (a *Agent) gather(ctx context.Context, sql string) (*sqlparse.Result, error) {
	br, err := a.QueryBrokers(ctx, &ontology.Query{
		Type:            ontology.TypeQuery,
		ContentLanguage: ontology.LangSQL2,
		Capabilities:    []string{ontology.CapMultiresourceQuery},
		Limit:           1,
	})
	if err != nil {
		return nil, fmt.Errorf("miner %s: locating an MRQ agent: %w", a.Name(), err)
	}
	if len(br.Matches) == 0 {
		return nil, fmt.Errorf("miner %s: no multiresource query agent available", a.Name())
	}
	target := br.Matches[0]
	msg := kqml.New(kqml.AskAll, a.Name(), &kqml.SQLQuery{SQL: sql})
	msg.Language = ontology.LangSQL2
	msg.Receiver = target.Name
	reply, err := a.Call(ctx, target.Address, msg)
	if err != nil {
		return nil, err
	}
	if reply.Performative != kqml.Tell {
		return nil, fmt.Errorf("miner %s: %s: %s", a.Name(), target.Name, kqml.ReasonOf(reply))
	}
	var sr kqml.SQLResult
	if err := reply.DecodeContent(&sr); err != nil {
		return nil, err
	}
	return &sqlparse.Result{Columns: sr.Columns, Rows: sr.Rows}, nil
}

// deviation flags rows whose column value sits more than threshold
// standard deviations from the mean.
func deviation(res *sqlparse.Result, column string, threshold float64) (*Report, error) {
	ci, err := numericColumn(res, column)
	if err != nil {
		return nil, err
	}
	if threshold <= 0 {
		threshold = 3
	}
	var m stats.Mean
	for _, row := range res.Rows {
		m.Add(row[ci].Number())
	}
	rep := &Report{Kind: KindDeviation, Column: column, N: res.Len(), Mean: m.Mean(), StdDev: m.StdDev()}
	if rep.StdDev == 0 {
		return rep, nil
	}
	for _, row := range res.Rows {
		v := row[ci].Number()
		z := (v - rep.Mean) / rep.StdDev
		if math.Abs(z) > threshold {
			rep.Outliers = append(rep.Outliers, Outlier{Row: rowStrings(row), Value: v, ZScore: z})
		}
	}
	return rep, nil
}

// trend fits value = a + slope*index by least squares over row order.
func trend(res *sqlparse.Result, column string) (*Report, error) {
	ci, err := numericColumn(res, column)
	if err != nil {
		return nil, err
	}
	n := float64(res.Len())
	rep := &Report{Kind: KindTrend, Column: column, N: res.Len()}
	if res.Len() < 2 {
		rep.Direction = "insufficient data"
		return rep, nil
	}
	var sumX, sumY, sumXY, sumXX float64
	var m stats.Mean
	for i, row := range res.Rows {
		x, y := float64(i), row[ci].Number()
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
		m.Add(y)
	}
	rep.Mean, rep.StdDev = m.Mean(), m.StdDev()
	denom := n*sumXX - sumX*sumX
	if denom != 0 {
		rep.Slope = (n*sumXY - sumX*sumY) / denom
	}
	// A trend is "significant" relative to the data's own scale.
	scale := rep.StdDev
	if scale == 0 {
		scale = 1
	}
	switch {
	case rep.Slope > 0.05*scale:
		rep.Direction = "rising"
	case rep.Slope < -0.05*scale:
		rep.Direction = "falling"
	default:
		rep.Direction = "stable"
	}
	return rep, nil
}

// infer asserts each gathered row as a fact row(v1, ..., vn), evaluates the
// caller's rule program over them, and reports the goal predicate's facts.
func infer(res *sqlparse.Result, program, goal string) (*Report, error) {
	if program == "" || goal == "" {
		return nil, fmt.Errorf("miner: datalog analysis needs a program and a goal predicate")
	}
	p, err := datalog.ParseProgram(program)
	if err != nil {
		return nil, err
	}
	for _, row := range res.Rows {
		p.AddFact(datalog.NewFact("row", rowStrings(row)...))
	}
	db, err := p.Eval()
	if err != nil {
		return nil, err
	}
	rep := &Report{Kind: KindDatalog, N: res.Len()}
	for _, f := range db.Facts(goal) {
		rep.Derived = append(rep.Derived, append([]string(nil), f.Args...))
	}
	return rep, nil
}

func numericColumn(res *sqlparse.Result, column string) (int, error) {
	if column == "" {
		return 0, fmt.Errorf("miner: analysis needs a column")
	}
	ci := res.ColIndex(column)
	if ci < 0 {
		return 0, fmt.Errorf("miner: column %q not in result %v", column, res.Columns)
	}
	return ci, nil
}

func rowStrings(row relational.Row) []string {
	out := make([]string, len(row))
	for i, v := range row {
		if v.Kind() == constraint.KindNumber {
			out[i] = datalog.CNum(v.Number()).Name
		} else {
			out[i] = v.Text()
		}
	}
	return out
}
