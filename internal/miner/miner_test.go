package miner

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"infosleuth/internal/broker"
	"infosleuth/internal/kqml"
	"infosleuth/internal/mrq"
	"infosleuth/internal/ontology"
	"infosleuth/internal/relational"
	"infosleuth/internal/resource"
	"infosleuth/internal/transport"
)

// rig builds broker + resource (hospital stays with one wild outlier) +
// MRQ + miner.
func rig(t *testing.T) *Agent {
	t.Helper()
	tr := transport.NewInProc()
	world := ontology.NewWorld(ontology.Healthcare())
	b, err := broker.New(broker.Config{Name: "Broker1", Transport: tr, World: world})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Stop() })

	db := relational.NewDatabase()
	stays, err := db.Create(relational.Schema{
		Name: "hospital_stay",
		Columns: []relational.Column{
			{Name: "stay_id", Type: relational.TypeString},
			{Name: "procedure", Type: relational.TypeString},
			{Name: "cost", Type: relational.TypeNumber},
		},
		Key: "stay_id",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Costs rise linearly 1000..1190 (a clear trend) with one wild
	// outlier at the end.
	for i := 0; i < 20; i++ {
		stays.MustInsert(relational.Row{
			relational.Str(fmt.Sprintf("S%02d", i)),
			relational.Str("caesarian"),
			relational.Num(1000 + float64(i)*10),
		})
	}
	stays.MustInsert(relational.Row{
		relational.Str("S99"), relational.Str("caesarian"), relational.Num(9000),
	})

	ra, err := resource.New(resource.Config{
		Name: "Hospital", Transport: tr, KnownBrokers: []string{b.Addr()},
		DB:       db,
		Fragment: ontology.Fragment{Ontology: "healthcare", Classes: []string{"hospital_stay"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ra.Stop() })
	if _, err := ra.Advertise(context.Background()); err != nil {
		t.Fatal(err)
	}

	m, err := mrq.New(mrq.Config{
		Name: "MRQ agent", Transport: tr, KnownBrokers: []string{b.Addr()},
		World: world, Ontology: "healthcare",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Stop() })
	if _, err := m.Advertise(context.Background()); err != nil {
		t.Fatal(err)
	}

	mn, err := New(Config{
		Name: "Mining agent", Transport: tr, KnownBrokers: []string{b.Addr()},
		Ontology: "healthcare",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mn.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mn.Stop() })
	if _, err := mn.Advertise(context.Background()); err != nil {
		t.Fatal(err)
	}
	return mn
}

func TestDeviationFlagsOutlier(t *testing.T) {
	mn := rig(t)
	rep, err := mn.Mine(context.Background(), &Request{
		Kind:   KindDeviation,
		SQL:    "SELECT stay_id, cost FROM hospital_stay WHERE procedure = 'caesarian'",
		Column: "cost",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 21 {
		t.Errorf("N = %d", rep.N)
	}
	if len(rep.Outliers) != 1 {
		t.Fatalf("outliers = %+v, want the $9000 stay", rep.Outliers)
	}
	if rep.Outliers[0].Value != 9000 || rep.Outliers[0].ZScore < 3 {
		t.Errorf("outlier = %+v", rep.Outliers[0])
	}
}

func TestTrendDetectsRisingCosts(t *testing.T) {
	mn := rig(t)
	rep, err := mn.Mine(context.Background(), &Request{
		Kind:   KindTrend,
		SQL:    "SELECT cost FROM hospital_stay WHERE cost < 2000 ORDER BY cost",
		Column: "cost",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Direction != "rising" || rep.Slope < 9 || rep.Slope > 11 {
		t.Errorf("trend = %+v, want rising slope ≈10", rep)
	}
}

func TestTrendStable(t *testing.T) {
	mn := rig(t)
	// A constant column (procedure costs of a single row set filtered to
	// one value) — use the outlier-free flat slice by selecting one row.
	rep, err := mn.Mine(context.Background(), &Request{
		Kind:   KindTrend,
		SQL:    "SELECT cost FROM hospital_stay WHERE cost = 1000",
		Column: "cost",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Direction != "insufficient data" {
		t.Errorf("single-row trend = %q", rep.Direction)
	}
}

func TestDatalogInference(t *testing.T) {
	mn := rig(t)
	// Logical inferencing over gathered rows: flag stays over 5000.
	rep, err := mn.Mine(context.Background(), &Request{
		Kind: KindDatalog,
		SQL:  "SELECT stay_id, cost FROM hospital_stay",
		Program: `
			expensive(Id, Cost) :- row(Id, Cost), gt(Cost, 5000).
		`,
		Goal: "expensive",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) != 1 || rep.Derived[0][0] != "S99" {
		t.Errorf("derived = %v, want the S99 stay", rep.Derived)
	}
}

func TestMineViaKQML(t *testing.T) {
	mn := rig(t)
	tr := transport.NewInProc()
	_ = tr // the miner's own transport carries the call
	msg := kqml.New(kqml.AskAll, "asker", &Request{
		Kind:   KindDeviation,
		SQL:    "SELECT stay_id, cost FROM hospital_stay",
		Column: "cost",
	})
	reply, err := mn.Call(context.Background(), mn.Addr(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != kqml.Tell {
		t.Fatalf("reply = %s: %s", reply.Performative, kqml.ReasonOf(reply))
	}
	var rep Report
	if err := reply.DecodeContent(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Outliers) != 1 {
		t.Errorf("outliers over KQML = %d", len(rep.Outliers))
	}
}

func TestMineErrors(t *testing.T) {
	mn := rig(t)
	ctx := context.Background()
	cases := []*Request{
		{Kind: "nope", SQL: "SELECT cost FROM hospital_stay"},
		{Kind: KindDeviation, SQL: "SELECT cost FROM hospital_stay"},                        // missing column
		{Kind: KindDeviation, SQL: "SELECT cost FROM hospital_stay", Column: "zz"},          // unknown column
		{Kind: KindDeviation, SQL: "SELECT cost FROM nowhere", Column: "cost"},              // bad SQL target
		{Kind: KindDatalog, SQL: "SELECT cost FROM hospital_stay"},                          // missing program
		{Kind: KindDatalog, SQL: "SELECT cost FROM hospital_stay", Program: "x", Goal: "g"}, // bad program
	}
	for _, req := range cases {
		if _, err := mn.Mine(ctx, req); err == nil {
			t.Errorf("Mine(%+v) should fail", req)
		}
	}
}

func TestMinerAdvertisesDataMining(t *testing.T) {
	mn := rig(t)
	br, err := mn.QueryBrokers(context.Background(), &ontology.Query{
		Capabilities: []string{ontology.CapDataMining},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ad := range br.Matches {
		if ad.Name == "Mining agent" {
			found = true
		}
	}
	if !found {
		t.Errorf("mining agent not discoverable by capability: %v", br.Matches)
	}
}

func TestNewRequiresOntology(t *testing.T) {
	if _, err := New(Config{Name: "m", Transport: transport.NewInProc()}); err == nil ||
		!strings.Contains(err.Error(), "Ontology") {
		t.Error("missing ontology should fail")
	}
}
