// Package provenance routes decision-provenance events (kqml.ProvEvent)
// from the agents that make decisions to the process-local flight
// recorder and onto KQML reply envelopes.
//
// It mirrors the span plumbing in package telemetry: a process-wide
// recorder installed with SetRecorder receives every event recorded under
// a trace ID, and a per-request Collector carried on the context gathers
// the events one handler produced so they can be attached to the reply
// envelope (kqml.AppendProv) and ride back toward the originator.
//
// Everything is off by default: with no recorder installed and no
// collector on the context, Emitter construction returns nil and
// producers skip all event-building work, so untraced conversations and
// the Section 5 experiment harness pay nothing.
package provenance

import (
	"context"
	"sync"
	"sync/atomic"

	"infosleuth/internal/kqml"
)

// Recorder receives decision events for storage, keyed by trace ID. The
// flight recorder (telemetry/recorder) implements it.
type Recorder interface {
	RecordProv(traceID string, ev kqml.ProvEvent)
}

type recorderBox struct{ r Recorder }

var activeRecorder atomic.Pointer[recorderBox]

// SetRecorder installs the process-wide provenance recorder and returns
// the previous one (nil uninstalls).
func SetRecorder(r Recorder) Recorder {
	var newBox *recorderBox
	if r != nil {
		newBox = &recorderBox{r: r}
	}
	old := activeRecorder.Swap(newBox)
	if old == nil {
		return nil
	}
	return old.r
}

// Active reports whether a process-wide recorder is installed.
func Active() bool { return activeRecorder.Load() != nil }

// Record delivers one event to the installed recorder, if any. Events
// without a trace ID are dropped: provenance only exists for traced
// conversations.
func Record(traceID string, ev kqml.ProvEvent) {
	if traceID == "" {
		return
	}
	if box := activeRecorder.Load(); box != nil {
		box.r.RecordProv(traceID, ev)
	}
}

// RecordEnvelope mirrors events carried on a reply envelope into the
// installed recorder (the transport layer calls it on every traced
// reply; the recorder deduplicates double delivery).
func RecordEnvelope(traceID string, events ...kqml.ProvEvent) {
	if traceID == "" || len(events) == 0 {
		return
	}
	box := activeRecorder.Load()
	if box == nil {
		return
	}
	for _, ev := range events {
		box.r.RecordProv(traceID, ev)
	}
}

// Collector gathers the events one request handler produced so the
// handler can attach them to its reply envelope. It is safe for
// concurrent use (MRQ fan-out workers record from goroutines).
type Collector struct {
	mu     sync.Mutex
	events []kqml.ProvEvent
}

// Add appends events to the collector, enforcing the envelope cap so a
// runaway producer cannot bloat the eventual reply.
func (c *Collector) Add(events ...kqml.ProvEvent) {
	if c == nil || len(events) == 0 {
		return
	}
	c.mu.Lock()
	c.events = kqml.AppendProv(c.events, events...)
	c.mu.Unlock()
}

// Events returns the collected events (the internal slice; callers
// attach it to exactly one reply).
func (c *Collector) Events() []kqml.ProvEvent {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

type collectorKey struct{}

// WithCollector returns a context carrying a fresh Collector, and the
// collector itself. Handlers install one per traced request; producers
// down the call chain find it via For.
func WithCollector(ctx context.Context) (context.Context, *Collector) {
	c := &Collector{}
	return context.WithValue(ctx, collectorKey{}, c), c
}

// CollectorFrom returns the context's collector, or nil.
func CollectorFrom(ctx context.Context) *Collector {
	c, _ := ctx.Value(collectorKey{}).(*Collector)
	return c
}

// Emitter is a producer's handle for one traced request: it fans each
// event out to the process recorder and the request's collector. A nil
// Emitter is inert, so call sites read:
//
//	if em := provenance.For(ctx, traceID); em != nil {
//	    em.Emit(kqml.ProvEvent{...})
//	}
//
// keeping all event-building work behind the nil check.
type Emitter struct {
	traceID   string
	collector *Collector
	global    bool
}

// For returns an Emitter when the conversation is traced and someone is
// listening (a process recorder, a context collector, or both); nil
// otherwise.
func For(ctx context.Context, traceID string) *Emitter {
	if traceID == "" {
		return nil
	}
	c := CollectorFrom(ctx)
	g := Active()
	if c == nil && !g {
		return nil
	}
	return &Emitter{traceID: traceID, collector: c, global: g}
}

// Emit delivers one event to the recorder and/or collector.
func (e *Emitter) Emit(ev kqml.ProvEvent) {
	if e == nil {
		return
	}
	if e.global {
		Record(e.traceID, ev)
	}
	e.collector.Add(ev)
}

// CollectReply folds the provenance a reply envelope carried into the
// context's collector, so a relaying agent (broker forwarding, MRQ
// fan-out) propagates its callees' decisions on its own reply. The
// process recorder already saw these events via the transport bridge.
func CollectReply(ctx context.Context, reply *kqml.Message) {
	if reply == nil || len(reply.Provenance) == 0 {
		return
	}
	CollectorFrom(ctx).Add(reply.Provenance...)
}
