package provenance

import (
	"context"
	"sync"
	"testing"

	"infosleuth/internal/kqml"
)

type capture struct {
	mu     sync.Mutex
	events map[string][]kqml.ProvEvent
}

func (c *capture) RecordProv(traceID string, ev kqml.ProvEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.events == nil {
		c.events = make(map[string][]kqml.ProvEvent)
	}
	c.events[traceID] = append(c.events[traceID], ev)
}

func TestForGating(t *testing.T) {
	prev := SetRecorder(nil)
	defer SetRecorder(prev)

	if em := For(context.Background(), "t1"); em != nil {
		t.Fatalf("no recorder, no collector: For should be nil")
	}
	cap := &capture{}
	SetRecorder(cap)
	if em := For(context.Background(), ""); em != nil {
		t.Fatalf("untraced: For should be nil even with a recorder")
	}
	if em := For(context.Background(), "t1"); em == nil {
		t.Fatalf("recorder installed: For should be non-nil")
	}
	SetRecorder(nil)
	ctx, _ := WithCollector(context.Background())
	if em := For(ctx, "t1"); em == nil {
		t.Fatalf("collector on ctx: For should be non-nil without a recorder")
	}
}

func TestEmitFansOut(t *testing.T) {
	cap := &capture{}
	prev := SetRecorder(cap)
	defer SetRecorder(prev)

	ctx, col := WithCollector(context.Background())
	em := For(ctx, "t9")
	em.Emit(kqml.ProvEvent{Kind: kqml.ProvForward, Agent: "B1",
		Forward: &kqml.ForwardDecision{Peer: "B2"}})

	if got := len(cap.events["t9"]); got != 1 {
		t.Fatalf("recorder got %d events, want 1", got)
	}
	if got := len(col.Events()); got != 1 {
		t.Fatalf("collector got %d events, want 1", got)
	}
}

func TestCollectReply(t *testing.T) {
	prev := SetRecorder(nil)
	defer SetRecorder(prev)

	ctx, col := WithCollector(context.Background())
	reply := &kqml.Message{Provenance: []kqml.ProvEvent{
		{Kind: kqml.ProvMatch, Agent: "B2", Match: &kqml.MatchDecision{Ad: "R1", Accepted: true}},
	}}
	CollectReply(ctx, reply)
	if got := len(col.Events()); got != 1 {
		t.Fatalf("collector got %d events, want 1", got)
	}
	// No collector: must not panic.
	CollectReply(context.Background(), reply)
}

func TestCollectorCaps(t *testing.T) {
	col := &Collector{}
	for i := 0; i < kqml.MaxProvEvents+20; i++ {
		col.Add(kqml.ProvEvent{Kind: kqml.ProvFetch, Fetch: &kqml.FetchReport{Resource: "R"}})
	}
	evs := col.Events()
	if len(evs) != kqml.MaxProvEvents {
		t.Fatalf("collector holds %d events, want cap %d", len(evs), kqml.MaxProvEvents)
	}
	if evs[0].Kind != kqml.ProvDropped {
		t.Fatalf("capped collector should lead with a dropped marker")
	}
}
