//go:build race

package telemetry

// raceEnabled reports that the race detector is on; timing assertions are
// skipped since instrumented atomics run an order of magnitude slower.
const raceEnabled = true
