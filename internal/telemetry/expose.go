package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges emit one sample per label
// value; histograms emit summary-typed quantile samples plus _sum and
// _count, which is how Prometheus expects client-side quantiles.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "summary"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			base := labelPairs(f.label, s.labelValue)
			switch c := s.collector.(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, wrap(base), c.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, wrap(base), formatFloat(c.Value())); err != nil {
					return err
				}
			case *Histogram:
				snap := c.Snapshot()
				for _, q := range []struct {
					q string
					v float64
				}{{"0.5", snap.P50}, {"0.95", snap.P95}, {"0.99", snap.P99}} {
					pairs := append(append([]string(nil), base...), `quantile="`+q.q+`"`)
					if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, wrap(pairs), formatFloat(q.v)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, wrap(base), formatFloat(snap.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, wrap(base), snap.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func labelPairs(label, value string) []string {
	if label == "" {
		return nil
	}
	return []string{label + `="` + escapeLabel(value) + `"`}
}

func wrap(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns the registry as a JSON-marshalable tree:
// metric name -> label value -> value (or histogram summary). Unlabeled
// metrics appear under the empty-string label.
func (r *Registry) Snapshot() map[string]map[string]any {
	out := make(map[string]map[string]any)
	for _, f := range r.snapshotFamilies() {
		m := make(map[string]any)
		for _, s := range f.snapshotSeries() {
			switch c := s.collector.(type) {
			case *Counter:
				m[s.labelValue] = c.Value()
			case *Gauge:
				m[s.labelValue] = c.Value()
			case *Histogram:
				m[s.labelValue] = c.Snapshot()
			}
		}
		if len(m) > 0 {
			out[f.name] = m
		}
	}
	return out
}

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot (histograms as {count,sum,min,max,p50,p95,p99})
//	/healthz       liveness probe
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve exposes the registry at addr (host:port) and returns the running
// server. The daemons call this behind -metrics-addr.
func Serve(addr string, r *Registry) (*Server, error) {
	if r == nil {
		r = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Server is a running metrics exposition endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with port 0).
func (m *Server) Addr() string { return m.ln.Addr().String() }

// Close shuts the endpoint down.
func (m *Server) Close() error { return m.srv.Close() }

// SortedNames returns the registered metric names, sorted — handy for
// documentation tests and debugging.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
