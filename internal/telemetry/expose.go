package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges emit one sample per label
// value; histograms emit summary-typed quantile samples plus _sum and
// _count, which is how Prometheus expects client-side quantiles.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runHooks()
	for _, f := range r.snapshotFamilies() {
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "summary"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range f.snapshotSeries() {
			base := labelPairs(f.label, s.labelValue)
			switch c := s.collector.(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, wrap(base), c.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, wrap(base), formatFloat(c.Value())); err != nil {
					return err
				}
			case *Histogram:
				snap := c.Snapshot()
				for _, q := range []struct {
					q string
					v float64
				}{{"0.5", snap.P50}, {"0.95", snap.P95}, {"0.99", snap.P99}} {
					pairs := append(append([]string(nil), base...), `quantile="`+q.q+`"`)
					if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, wrap(pairs), formatFloat(q.v)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, wrap(base), formatFloat(snap.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, wrap(base), snap.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func labelPairs(label, value string) []string {
	if label == "" {
		return nil
	}
	return []string{label + `="` + escapeLabel(value) + `"`}
}

func wrap(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns the registry as a JSON-marshalable tree:
// metric name -> label value -> value (or histogram summary). Unlabeled
// metrics appear under the empty-string label.
func (r *Registry) Snapshot() map[string]map[string]any {
	r.runHooks()
	out := make(map[string]map[string]any)
	for _, f := range r.snapshotFamilies() {
		m := make(map[string]any)
		for _, s := range f.snapshotSeries() {
			switch c := s.collector.(type) {
			case *Counter:
				m[s.labelValue] = c.Value()
			case *Gauge:
				m[s.labelValue] = c.Value()
			case *Histogram:
				m[s.labelValue] = c.Snapshot()
			}
		}
		if len(m) > 0 {
			out[f.name] = m
		}
	}
	return out
}

// ServeOption customizes the HTTP handler built by Handler and Serve.
type ServeOption func(*serveOptions)

type serveOptions struct {
	mounts    []mount
	readiness []func() error
	pprof     bool
}

type mount struct {
	pattern string
	handler http.Handler
}

// WithHandler mounts an extra handler on the exposition mux (for example a
// flight recorder's /traces endpoints).
func WithHandler(pattern string, h http.Handler) ServeOption {
	return func(o *serveOptions) {
		o.mounts = append(o.mounts, mount{pattern: pattern, handler: h})
	}
}

// WithReadiness adds a readiness check consulted by /readyz: the endpoint
// answers 200 only while every check returns nil, and 503 with the first
// failure's text otherwise. Daemons wire their broker-registration state
// here (a resource agent with no connected broker is alive but not ready).
func WithReadiness(check func() error) ServeOption {
	return func(o *serveOptions) {
		if check != nil {
			o.readiness = append(o.readiness, check)
		}
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ — behind the
// daemons' -pprof opt-in flag, since profiling endpoints on a metrics port
// are not always wanted.
func WithPprof() ServeOption {
	return func(o *serveOptions) { o.pprof = true }
}

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot (histograms as {count,sum,min,max,p50,p95,p99})
//	/healthz       liveness probe (always 200 while the process serves)
//	/readyz        readiness probe (200 iff every WithReadiness check passes)
//
// plus any handlers mounted via options.
func (r *Registry) Handler(opts ...ServeOption) http.Handler {
	var o serveOptions
	for _, opt := range opts {
		opt(&o)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	checks := o.readiness
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, req *http.Request) {
		for _, check := range checks {
			if err := check(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	if o.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for _, m := range o.mounts {
		mux.Handle(m.pattern, m.handler)
	}
	return mux
}

// Serve exposes the registry at addr (host:port) and returns the running
// server. The daemons call this behind -metrics-addr.
func Serve(addr string, r *Registry, opts ...ServeOption) (*Server, error) {
	if r == nil {
		r = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(opts...), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Server is a running metrics exposition endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with port 0).
func (m *Server) Addr() string { return m.ln.Addr().String() }

// Close shuts the endpoint down.
func (m *Server) Close() error { return m.srv.Close() }

// SortedNames returns the registered metric names, sorted — handy for
// documentation tests and debugging.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// MetricInfo describes one registered metric family: its name, help text,
// type ("counter", "gauge" or "histogram"), and label dimension (empty for
// unlabeled metrics).
type MetricInfo struct {
	Name  string `json:"name"`
	Help  string `json:"help"`
	Type  string `json:"type"`
	Label string `json:"label,omitempty"`
}

// Metrics returns every registered metric family's metadata, sorted by
// name — the source of truth behind the generated METRICS.md catalog.
func (r *Registry) Metrics() []MetricInfo {
	fams := r.snapshotFamilies()
	out := make([]MetricInfo, 0, len(fams))
	for _, f := range fams {
		out = append(out, MetricInfo{Name: f.name, Help: f.help, Type: f.kind.String(), Label: f.label})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
