package telemetry

import (
	"sync"
	"testing"
)

func TestP99EstConverges(t *testing.T) {
	// A stream that is 100 µs with 1-in-100 spikes to 10 000 µs: the p99
	// estimate must settle between the bulk and the spikes, so the spikes
	// are flagged and the bulk is not.
	var e p99Est
	for i := 0; i < 5000; i++ {
		v := 100.0
		if i%100 == 99 {
			v = 10000
		}
		e.observe(v)
	}
	if !e.warm() {
		t.Fatal("estimator not warm after 5000 samples")
	}
	if e.est <= 100 || e.est >= 10000 {
		t.Fatalf("p99 estimate %v not between bulk (100) and spikes (10000)", e.est)
	}
	if e.q != 0.99 {
		t.Fatalf("zero-value estimator should default to q=0.99, got %v", e.q)
	}
}

func TestP99EstTracksRegimeChange(t *testing.T) {
	var e p99Est
	for i := 0; i < 1000; i++ {
		e.observe(100)
	}
	low := e.est
	// The operation degrades 50x; the threshold must follow.
	for i := 0; i < 2000; i++ {
		e.observe(5000)
	}
	if e.est <= low {
		t.Fatalf("estimate did not rise after regime change: %v -> %v", low, e.est)
	}
	if e.est < 1000 {
		t.Fatalf("estimate %v still near old regime after 2000 slow samples", e.est)
	}
}

func TestTailSamplerWarmupAndDecision(t *testing.T) {
	s := NewTailSampler()
	// Cold: no decisions, whatever the latency.
	for i := 0; i < estWarmup-1; i++ {
		if slow, _ := s.Observe("op", 100); slow {
			t.Fatalf("observation %d flagged slow before warmup", i)
		}
	}
	if _, ok := s.Threshold("op"); ok {
		t.Fatal("Threshold reported ok before warmup")
	}
	// Warm it fully on ~100 µs traffic, then a big outlier must be flagged
	// against the settled threshold.
	for i := 0; i < 500; i++ {
		s.Observe("op", int64(90+i%20))
	}
	th, ok := s.Threshold("op")
	if !ok {
		t.Fatal("Threshold not ok after 500 observations")
	}
	if th < 50 || th > 500 {
		t.Fatalf("threshold %v implausible for ~100 µs traffic", th)
	}
	slow, prior := s.Observe("op", 50000)
	if !slow {
		t.Fatal("50 ms outlier not flagged on ~100 µs traffic")
	}
	if prior <= 0 {
		t.Fatalf("flagged observation returned threshold %v", prior)
	}
	// Unknown op: never slow.
	if slow, _ := s.Observe("other", 50000); slow {
		t.Fatal("first observation of a new op flagged slow")
	}
}

func TestTailSamplerConcurrent(t *testing.T) {
	s := NewTailSampler()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe("op", int64(100+i%10))
				s.Threshold("op")
			}
		}(g)
	}
	wg.Wait()
	if th, ok := s.Threshold("op"); !ok || th <= 0 {
		t.Fatalf("threshold after concurrent observes: %v ok=%v", th, ok)
	}
}

type captureObserver struct {
	mu  sync.Mutex
	got []RootOutcome
}

func (c *captureObserver) ObserveRoot(o RootOutcome) {
	c.mu.Lock()
	c.got = append(c.got, o)
	c.mu.Unlock()
}

func TestRootObserverInstallObserveUninstall(t *testing.T) {
	if RootObserverActive() {
		t.Fatal("observer active before install")
	}
	ObserveRoot(RootOutcome{Op: "dropped"}) // must not panic

	c := &captureObserver{}
	prev := SetRootObserver(c)
	if prev != nil {
		t.Fatalf("previous observer %v, want nil", prev)
	}
	defer SetRootObserver(nil)
	if !RootObserverActive() {
		t.Fatal("observer not active after install")
	}
	ObserveRoot(RootOutcome{Op: "mrq.run", TraceID: "t1", DurationMicros: 42, Degraded: true})
	c.mu.Lock()
	n := len(c.got)
	c.mu.Unlock()
	if n != 1 || c.got[0].Op != "mrq.run" || !c.got[0].Degraded {
		t.Fatalf("captured %+v", c.got)
	}

	if got := SetRootObserver(nil); got != RootObserver(c) {
		t.Fatalf("uninstall returned %v, want the installed observer", got)
	}
	ObserveRoot(RootOutcome{Op: "dropped"})
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.got) != 1 {
		t.Fatalf("observer still receiving after uninstall: %d outcomes", len(c.got))
	}
}

func TestMultiRootObserverSkipsNil(t *testing.T) {
	a, b := &captureObserver{}, &captureObserver{}
	m := MultiRootObserver{a, nil, b}
	m.ObserveRoot(RootOutcome{Op: "x"})
	if len(a.got) != 1 || len(b.got) != 1 {
		t.Fatalf("fan-out got %d/%d, want 1/1", len(a.got), len(b.got))
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "x")
	// Warm the embedded estimator so the exemplar rule switches from
	// "latest traced" to "p99-class only".
	for i := 0; i < estWarmup*2; i++ {
		h.ObserveWithExemplar(0.001, "warm")
	}
	snap := h.Snapshot()
	if snap.ExemplarTraceID != "warm" {
		t.Fatalf("exemplar %q, want warm-up trace", snap.ExemplarTraceID)
	}
	// A p99-class observation replaces the exemplar; a bulk one must not.
	h.ObserveWithExemplar(1.0, "spike")
	h.ObserveWithExemplar(0.0001, "bulk")
	snap = h.Snapshot()
	if snap.ExemplarTraceID != "spike" {
		t.Fatalf("exemplar %q, want spike", snap.ExemplarTraceID)
	}
	if snap.ExemplarValue != 1.0 {
		t.Fatalf("exemplar value %v, want 1.0", snap.ExemplarValue)
	}
	// Untraced observations never disturb the exemplar.
	h.Observe(2.0)
	if got := h.Snapshot().ExemplarTraceID; got != "spike" {
		t.Fatalf("exemplar %q after untraced observation, want spike", got)
	}
}
