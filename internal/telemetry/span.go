package telemetry

import (
	"context"
	"sync/atomic"
)

// Span is one completed unit of traced work: an agent handling a message,
// a client-side RPC round trip, a broker search at some forwarding depth.
// It is the recorder-side mirror of the kqml TraceSpan that rides reply
// envelopes, widened with the trace ID (implicit on the envelope) and an
// error string. Field encodings match the wire form — start in Unix
// nanoseconds, duration in microseconds — so a span observed locally and
// its copy ingested from a reply envelope compare equal and deduplicate.
type Span struct {
	// TraceID is the conversation the span belongs to; never empty for a
	// recorded span.
	TraceID string `json:"trace_id"`
	// Agent names the agent that did the work.
	Agent string `json:"agent"`
	// Op is what the agent did (see the Op* constants).
	Op string `json:"op"`
	// Hop is the inter-broker distance from the origin broker, 0 for
	// non-broker spans.
	Hop int `json:"hop,omitempty"`
	// StartUnixNano is the span's start time in Unix nanoseconds.
	StartUnixNano int64 `json:"start,omitempty"`
	// DurationMicros is the span's duration in microseconds.
	DurationMicros int64 `json:"us,omitempty"`
	// Err is the error the spanned operation returned, empty on success.
	Err string `json:"err,omitempty"`
	// Dropped carries the span count folded into a trace-dropped marker
	// span (see the kqml envelope cap); 0 for ordinary spans.
	Dropped int `json:"dropped,omitempty"`
}

// EndUnixNano returns the span's end time in Unix nanoseconds.
func (s *Span) EndUnixNano() int64 {
	return s.StartUnixNano + s.DurationMicros*1000
}

// Span op names. The envelope-level constants (broker search, the dropped
// marker) are duplicated from package kqml rather than imported so that
// kqml keeps its telemetry-free dependency posture; a cross-check test in
// internal/transport pins the strings together.
const (
	// OpRPCCall is a client-side transport round trip.
	OpRPCCall = "rpc.call"
	// OpDispatchPrefix prefixes agent.Base dispatch spans; the full op is
	// "dispatch." + performative.
	OpDispatchPrefix = "dispatch."
	// OpBrokerSearch mirrors kqml.OpBrokerSearch.
	OpBrokerSearch = "broker.search"
	// OpQueryBrokers is an agent's broker-query attempt loop (connected
	// brokers first, then known brokers).
	OpQueryBrokers = "query.brokers"
	// OpMRQRun is one end-to-end multiresource query in an MRQ agent.
	OpMRQRun = "mrq.run"
	// OpMRQPlan is the federated planner building a query plan before
	// fan-out (cost ranking, semi-join and aggregate-pushdown decisions).
	OpMRQPlan = "mrq.plan"
	// OpMRQAssemble is one class's resource discovery + fragment fetch.
	OpMRQAssemble = "mrq.assemble"
	// OpMRQFetch is one fragment fetch against one resource agent inside
	// an MRQ fan-out; the spans under an mrq.assemble show its shape.
	OpMRQFetch = "mrq.fetch"
	// OpResourceQuery is a resource agent executing a data query.
	OpResourceQuery = "resource.query"
	// OpRetryAttempt marks a resilience-policy retry: the span's agent is
	// the peer being retried and its error notes the attempt number.
	OpRetryAttempt = "retry.attempt"
	// OpFailover marks an MRQ fragment recovered through a redundant
	// advertisement after its primary resource failed.
	OpFailover = "failover"
	// OpUserSubmit is a user agent's end-to-end SQL submission.
	OpUserSubmit = "useragent.submit"
	// OpSubscribeEval is a resource agent re-evaluating one standing
	// query after a data change (the subscribe conversation's push side).
	OpSubscribeEval = "subscribe.eval"
	// OpTraceDropped mirrors kqml.OpTraceDropped: a marker standing in
	// for spans evicted from a capped envelope trace.
	OpTraceDropped = "trace.dropped"
)

// SpanRecorder consumes completed spans. Implementations must be safe for
// concurrent use and must not block: RecordSpan is called on transport and
// dispatch hot paths.
type SpanRecorder interface {
	RecordSpan(Span)
}

// recorderBox wraps the interface so atomic.Pointer has one concrete type.
type recorderBox struct{ r SpanRecorder }

var activeRecorder atomic.Pointer[recorderBox]

// SetSpanRecorder installs r as the process-wide span recorder and returns
// the previous one (nil if none). Passing nil uninstalls. Untraced
// processes never install one, and RecordSpan is then a single atomic load.
func SetSpanRecorder(r SpanRecorder) SpanRecorder {
	var next *recorderBox
	if r != nil {
		next = &recorderBox{r: r}
	}
	prev := activeRecorder.Swap(next)
	if prev == nil {
		return nil
	}
	return prev.r
}

// SpanRecorderActive reports whether a span recorder is installed — a
// cheap guard for call sites that would otherwise loop or allocate to
// build spans nobody collects.
func SpanRecorderActive() bool {
	return activeRecorder.Load() != nil
}

// RecordSpan hands a completed span to the installed recorder; it is a
// no-op when none is installed. Spans without a trace ID are ignored.
func RecordSpan(s Span) {
	if s.TraceID == "" {
		return
	}
	if box := activeRecorder.Load(); box != nil {
		box.r.RecordSpan(s)
	}
}

// traceIDKey is the context key carrying a conversation trace ID.
type traceIDKey struct{}

// WithTraceID returns a context carrying the trace ID, so a conversation's
// identity survives call chains (MRQ handle → Run → per-class assembly)
// without widening every signature.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace ID from the context, "" if untraced.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
