package telemetry

// p99Est is a streaming quantile estimator (stochastic approximation in
// the Robbins-Monro family): each observation nudges the estimate up by
// q·step when it lands above, down by (1-q)·step when it lands below, so
// the estimate is stationary where a fraction q of observations fall
// below it. The step adapts to the data scale through an EWMA of the
// absolute deviation, so the estimator needs no prior knowledge of the
// value range and tracks regime changes (a resource that suddenly slows
// pulls the threshold up within a few hundred observations).
//
// The struct is NOT safe for concurrent use: Histogram folds one under
// its own mutex, and the tail sampler wraps one per operation the same
// way. All state is two floats and a counter — observing is a handful of
// arithmetic ops, no allocation, no sorting.
type p99Est struct {
	q     float64 // target quantile, e.g. 0.99
	est   float64 // current quantile estimate
	scale float64 // EWMA of |v - est|, the adaptive step base
	n     int64   // observations seen
}

// estWarmup is how many observations the estimator wants before its
// estimate should be trusted (consumers gate "over threshold" decisions
// on it; the estimate itself converges earlier for stable inputs).
const estWarmup = 64

// observe feeds one sample and returns the updated estimate. The zero
// value targets p99: embedders (Histogram, the tail sampler) use the
// struct uninitialized, so the quantile defaults here rather than in a
// constructor.
func (e *p99Est) observe(v float64) float64 {
	if e.q == 0 {
		e.q = 0.99
	}
	e.n++
	if e.n == 1 {
		e.est = v
		e.scale = v * 0.5
		if e.scale < 0 {
			e.scale = -e.scale
		}
		return e.est
	}
	dev := v - e.est
	if dev < 0 {
		dev = -dev
	}
	// The deviation EWMA sets the step size: 1/16th of the typical spread
	// per sample balances convergence speed against estimate jitter.
	e.scale += 0.05 * (dev - e.scale)
	step := e.scale / 16
	if step <= 0 {
		step = 1e-12
	}
	if v > e.est {
		e.est += step * e.q
	} else {
		e.est -= step * (1 - e.q)
	}
	return e.est
}

// warm reports whether the estimator has seen enough samples to trust.
func (e *p99Est) warm() bool { return e.n >= estWarmup }
