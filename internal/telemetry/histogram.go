package telemetry

import (
	"sort"
	"sync"
)

// windowSize is the bounded observation window a histogram keeps. 1024
// samples is enough for stable p50/p95/p99 estimates of a hot path while
// keeping memory per series fixed — the registry never grows with traffic,
// only with the number of instrumented sites.
const windowSize = 1024

// Histogram records observations into a bounded ring window and reports
// quantile snapshots over the most recent windowSize samples, plus exact
// lifetime count and sum. Observe is safe for concurrent use and does no
// allocation, so instrumentation can stay always-on (see the package
// benchmark).
type Histogram struct {
	mu     sync.Mutex
	window [windowSize]float64
	next   int // ring write position
	filled int // how much of the window holds data
	count  int64
	sum    float64
	min    float64
	max    float64
}

func newHistogram() *Histogram { return &Histogram{} }

// Observe records one sample (by convention: seconds for durations).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.window[h.next] = v
	h.next = (h.next + 1) % windowSize
	if h.filled < windowSize {
		h.filled++
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	// Count and Sum cover the histogram's whole lifetime.
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Min and Max cover the histogram's whole lifetime.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Quantiles are estimated over the most recent bounded window.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Mean returns the lifetime mean, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot computes the current summary. It sorts a copy of the window, so
// it costs O(window log window) — fine for exposition endpoints, not meant
// for hot paths.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	n := h.filled
	samples := make([]float64, n)
	copy(samples, h.window[:n])
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	h.mu.Unlock()
	if n == 0 {
		return snap
	}
	sort.Float64s(samples)
	snap.P50 = quantile(samples, 0.50)
	snap.P95 = quantile(samples, 0.95)
	snap.P99 = quantile(samples, 0.99)
	return snap
}

// quantile reads the q-quantile from a sorted sample using the
// nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
