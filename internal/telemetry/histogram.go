package telemetry

import (
	"sort"
	"sync"
)

// windowSize is the bounded observation window a histogram keeps. 1024
// samples is enough for stable p50/p95/p99 estimates of a hot path while
// keeping memory per series fixed — the registry never grows with traffic,
// only with the number of instrumented sites.
const windowSize = 1024

// Histogram records observations into a bounded ring window and reports
// quantile snapshots over the most recent windowSize samples, plus exact
// lifetime count and sum. Observe is safe for concurrent use and does no
// allocation, so instrumentation can stay always-on (see the package
// benchmark).
type Histogram struct {
	mu     sync.Mutex
	window [windowSize]float64
	next   int // ring write position
	filled int // how much of the window holds data
	count  int64
	sum    float64
	min    float64
	max    float64

	// Exemplar support: a streaming p99 estimate picks out p99-class
	// observations, and the most recent one that carried a trace ID is
	// remembered, so a latency spike in a dashboard links straight to a
	// slowlog trace.
	p99        p99Est
	exemplarID string
	exemplarV  float64
}

func newHistogram() *Histogram { return &Histogram{} }

// Observe records one sample (by convention: seconds for durations).
func (h *Histogram) Observe(v float64) {
	h.ObserveWithExemplar(v, "")
}

// ObserveWithExemplar records a sample and, when traceID is non-empty and
// the sample reaches the histogram's rolling p99 estimate, remembers the
// (value, trace ID) pair as the series exemplar. Like Observe it does not
// allocate, so traced hot paths can feed exemplars unconditionally.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.mu.Lock()
	h.window[h.next] = v
	h.next = (h.next + 1) % windowSize
	if h.filled < windowSize {
		h.filled++
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	threshold := h.p99.est
	warm := h.p99.warm()
	h.p99.observe(v)
	if traceID != "" && (!warm || v >= threshold) {
		h.exemplarID = traceID
		h.exemplarV = v
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	// Count and Sum cover the histogram's whole lifetime.
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Min and Max cover the histogram's whole lifetime.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Quantiles are estimated over the most recent bounded window.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// ExemplarTraceID and ExemplarValue link the most recent p99-class
	// observation that carried a trace ID (see ObserveWithExemplar);
	// empty/zero when no traced observation has reached the estimate.
	ExemplarTraceID string  `json:"exemplar_trace_id,omitempty"`
	ExemplarValue   float64 `json:"exemplar_value,omitempty"`
}

// Mean returns the lifetime mean, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot computes the current summary. It sorts a copy of the window, so
// it costs O(window log window) — fine for exposition endpoints, not meant
// for hot paths.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	n := h.filled
	samples := make([]float64, n)
	copy(samples, h.window[:n])
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		ExemplarTraceID: h.exemplarID, ExemplarValue: h.exemplarV}
	h.mu.Unlock()
	if n == 0 {
		return snap
	}
	sort.Float64s(samples)
	snap.P50 = quantile(samples, 0.50)
	snap.P95 = quantile(samples, 0.95)
	snap.P99 = quantile(samples, 0.99)
	return snap
}

// quantile reads the q-quantile from a sorted sample using the
// nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
