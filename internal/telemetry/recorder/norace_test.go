//go:build !race

package recorder

const raceEnabled = false
