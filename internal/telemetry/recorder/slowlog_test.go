package recorder

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"infosleuth/internal/telemetry"
)

// warmOp feeds enough fast roots that op's estimator passes the warm-up
// gate with a settled threshold.
func warmOp(r *Recorder, op string) {
	for i := 0; i < 200; i++ {
		r.ObserveRoot(telemetry.RootOutcome{Op: op, DurationMicros: int64(100 + i%10)})
	}
}

func TestSlowlogPinsSlowRoot(t *testing.T) {
	r := New(Options{})
	warmOp(r, "mrq.run")
	if got := r.Slowlog(0); len(got) != 0 {
		t.Fatalf("bulk traffic pinned %d entries", len(got))
	}
	// Record a span so the pinned entry can capture an explain report.
	r.RecordSpan(telemetry.Span{TraceID: "t-slow", Agent: "MRQ", Op: "mrq.run", StartUnixNano: 1, DurationMicros: 50000})
	r.ObserveRoot(telemetry.RootOutcome{Op: "mrq.run", TraceID: "t-slow", DurationMicros: 50000})
	entries := r.Slowlog(0)
	if len(entries) != 1 {
		t.Fatalf("slowlog holds %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Reason != ReasonSlow || e.TraceID != "t-slow" || e.ThresholdMicros <= 0 {
		t.Fatalf("pinned entry %+v", e)
	}
	if e.Explain == nil {
		t.Fatal("pinned entry lost its explain report")
	}
}

func TestSlowlogPinsErrorAndPartialBeforeWarmup(t *testing.T) {
	r := New(Options{})
	// Error and degraded roots pin even on a cold estimator.
	r.ObserveRoot(telemetry.RootOutcome{Op: "mrq.run", TraceID: "t-err", DurationMicros: 10, Err: true})
	r.ObserveRoot(telemetry.RootOutcome{Op: "mrq.run", TraceID: "t-part", DurationMicros: 10, Degraded: true})
	// Untraced outcomes move thresholds but cannot pin.
	r.ObserveRoot(telemetry.RootOutcome{Op: "mrq.run", DurationMicros: 10, Err: true})
	entries := r.Slowlog(0)
	if len(entries) != 2 {
		t.Fatalf("slowlog holds %d entries, want 2", len(entries))
	}
	// Newest first.
	if entries[0].Reason != ReasonPartial || entries[1].Reason != ReasonError {
		t.Fatalf("reasons %s/%s, want partial/error", entries[0].Reason, entries[1].Reason)
	}
}

func TestSlowlogDedupOutermostWins(t *testing.T) {
	r := New(Options{})
	// One conversation reports roots at several layers: the resource query,
	// then the MRQ run, then the user submission. One entry, outermost root.
	r.ObserveRoot(telemetry.RootOutcome{Op: "resource.query", TraceID: "t1", DurationMicros: 4000, Err: true})
	r.ObserveRoot(telemetry.RootOutcome{Op: "mrq.run", TraceID: "t1", DurationMicros: 4500, Err: true})
	r.ObserveRoot(telemetry.RootOutcome{Op: "useragent.submit", TraceID: "t1", DurationMicros: 5000, Err: true})
	// A shorter re-report must not replace the outermost.
	r.ObserveRoot(telemetry.RootOutcome{Op: "resource.query", TraceID: "t1", DurationMicros: 100, Err: true})
	entries := r.Slowlog(0)
	if len(entries) != 1 {
		t.Fatalf("slowlog holds %d entries, want 1 (deduped)", len(entries))
	}
	if entries[0].Op != "useragent.submit" || entries[0].DurationMicros != 5000 {
		t.Fatalf("kept %s/%dµs, want outermost useragent.submit/5000µs", entries[0].Op, entries[0].DurationMicros)
	}
}

func TestSlowlogRingBounded(t *testing.T) {
	r := New(Options{SlowlogCapacity: 4})
	for i := 0; i < 10; i++ {
		r.ObserveRoot(telemetry.RootOutcome{
			Op: "mrq.run", TraceID: fmt.Sprintf("t%d", i), DurationMicros: int64(1000 + i), Err: true,
		})
	}
	entries := r.Slowlog(0)
	if len(entries) != 4 {
		t.Fatalf("ring holds %d entries, want capacity 4", len(entries))
	}
	if entries[0].TraceID != "t9" || entries[3].TraceID != "t6" {
		t.Fatalf("ring kept %s..%s, want newest t9..t6", entries[0].TraceID, entries[3].TraceID)
	}
	if got := r.Slowlog(2); len(got) != 2 || got[0].TraceID != "t9" {
		t.Fatalf("limit=2 returned %d entries starting %s", len(got), got[0].TraceID)
	}
}

func TestSlowlogHandlerAndFormat(t *testing.T) {
	r := New(Options{})
	r.ObserveRoot(telemetry.RootOutcome{Op: "mrq.run", TraceID: "tj", DurationMicros: 1234, Err: true})

	rr := httptest.NewRecorder()
	r.SlowlogHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/slowlog", nil))
	var entries []SlowEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &entries); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(entries) != 1 || entries[0].TraceID != "tj" {
		t.Fatalf("JSON entries %+v", entries)
	}

	rr = httptest.NewRecorder()
	r.SlowlogHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/slowlog?format=text", nil))
	text := rr.Body.String()
	if !strings.Contains(text, "slowlog: 1 pinned trace(s)") || !strings.Contains(text, "tj") {
		t.Fatalf("text rendering:\n%s", text)
	}

	rr = httptest.NewRecorder()
	r.SlowlogHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/slowlog?limit=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad limit returned %d, want 400", rr.Code)
	}

	// An empty slowlog serves [] rather than null.
	empty := New(Options{})
	rr = httptest.NewRecorder()
	empty.SlowlogHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/slowlog", nil))
	if strings.TrimSpace(rr.Body.String()) != "[]" {
		t.Fatalf("empty slowlog served %q, want []", rr.Body.String())
	}
}
