//go:build race

package recorder

// raceEnabled reports that the race detector is on; timing assertions are
// skipped since instrumented atomics and mutexes run an order of
// magnitude slower.
const raceEnabled = true
