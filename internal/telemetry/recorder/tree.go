package recorder

import (
	"fmt"
	"sort"
	"strings"

	"infosleuth/internal/telemetry"
)

// Node is one span in an assembled trace tree.
type Node struct {
	Agent string `json:"agent"`
	Op    string `json:"op"`
	Hop   int    `json:"hop,omitempty"`
	// StartUnixNano / DurationMicros mirror the span's timing.
	StartUnixNano  int64   `json:"start,omitempty"`
	DurationMicros int64   `json:"us"`
	Err            string  `json:"err,omitempty"`
	Children       []*Node `json:"children,omitempty"`
}

// Tree is one trace assembled into parent/child structure: the entry
// span(s) at the roots, each span's children the work it enclosed —
// forwarded broker hops under the forwarding broker, resource queries
// under the MRQ fan-out that issued them.
type Tree struct {
	Summary Summary `json:"summary"`
	Roots   []*Node `json:"roots"`
}

// assemble builds the tree from an unordered span set. Spans may arrive
// out of order (concurrent fan-out, envelope mirroring), so structure is
// recovered at read time from timing: spans are sorted by start (ties:
// longer first, then coarser op), and each span nests under the nearest
// open span whose interval contains it. Two refinements keep the
// heuristic honest where wall-clock containment is ambiguous: concurrent
// sibling RPCs issued by one agent never nest under each other, and a
// broker-search span that timing could not place still attaches under the
// nearest broker-search one hop shallower (the BrokerQuery.Depth chain).
func assemble(sum Summary, spans []telemetry.Span) *Tree {
	tree := &Tree{Summary: sum}
	if len(spans) == 0 {
		return tree
	}
	nodes := make([]*Node, len(spans))
	order := make([]int, len(spans))
	for i, s := range spans {
		nodes[i] = &Node{
			Agent:          s.Agent,
			Op:             s.Op,
			Hop:            s.Hop,
			StartUnixNano:  s.StartUnixNano,
			DurationMicros: s.DurationMicros,
			Err:            s.Err,
		}
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if sa.StartUnixNano != sb.StartUnixNano {
			// Zero (unknown) starts sort last; they fall back to the
			// hop chain or the roots.
			if sa.StartUnixNano == 0 {
				return false
			}
			if sb.StartUnixNano == 0 {
				return true
			}
			return sa.StartUnixNano < sb.StartUnixNano
		}
		if ea, eb := sa.EndUnixNano(), sb.EndUnixNano(); ea != eb {
			return ea > eb // longer first: enclosing span before enclosed
		}
		return opRank(sa.Op) < opRank(sb.Op)
	})

	var stack []*Node
	contains := func(parent, child *Node) bool {
		if parent.StartUnixNano == 0 || child.StartUnixNano == 0 {
			return false
		}
		pEnd := parent.StartUnixNano + parent.DurationMicros*1000
		cEnd := child.StartUnixNano + child.DurationMicros*1000
		if parent.StartUnixNano > child.StartUnixNano || pEnd < cEnd {
			return false
		}
		if parent.StartUnixNano == child.StartUnixNano && pEnd == cEnd {
			// Identical intervals: only the coarser op may enclose.
			return opRank(parent.Op) < opRank(child.Op)
		}
		// Concurrent fan-out: one agent's sibling RPCs stay siblings even
		// when one call's window happens to cover another's.
		if parent.Op == telemetry.OpRPCCall && child.Op == telemetry.OpRPCCall && parent.Agent == child.Agent {
			return false
		}
		return true
	}
	attach := func(n *Node) {
		for len(stack) > 0 && !contains(stack[len(stack)-1], n) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if !attachByHop(tree.Roots, n) {
				tree.Roots = append(tree.Roots, n)
			}
		} else {
			p := stack[len(stack)-1]
			p.Children = append(p.Children, n)
		}
		stack = append(stack, n)
	}
	for _, i := range order {
		attach(nodes[i])
	}
	return tree
}

// attachByHop places a timing-less broker-search span under the first
// broker-search span one hop shallower, anywhere in the existing forest.
// It reports whether a parent was found.
func attachByHop(roots []*Node, n *Node) bool {
	if n.Op != telemetry.OpBrokerSearch || n.Hop == 0 || n.StartUnixNano != 0 {
		return false
	}
	var find func(list []*Node) *Node
	find = func(list []*Node) *Node {
		for _, c := range list {
			if c.Op == telemetry.OpBrokerSearch && c.Hop == n.Hop-1 {
				return c
			}
			if hit := find(c.Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	if p := find(roots); p != nil {
		p.Children = append(p.Children, n)
		return true
	}
	return false
}

// opRank orders ops from enclosing to enclosed, breaking timing ties the
// way the instrumentation actually nests.
func opRank(op string) int {
	switch {
	case op == telemetry.OpUserSubmit:
		return 0
	case op == telemetry.OpQueryBrokers:
		return 1
	case op == telemetry.OpRPCCall:
		return 2
	case strings.HasPrefix(op, telemetry.OpDispatchPrefix):
		return 3
	case op == telemetry.OpMRQRun:
		return 4
	case op == telemetry.OpMRQPlan:
		return 5
	case op == telemetry.OpMRQAssemble:
		return 6
	case op == telemetry.OpMRQFetch:
		return 7
	case op == telemetry.OpBrokerSearch:
		return 8
	case op == telemetry.OpResourceQuery:
		return 9
	default:
		return 10
	}
}

// Format renders the tree as indented text, one line per span:
//
//	trace 5165c4b075c28b41: 12 spans, 7 agents, max hop 1, 1840 µs
//	└─ useragent.submit      user agent        1840 µs
//	   ├─ query.brokers      user agent         412 µs
//	   ...
func (t *Tree) Format() string {
	var b strings.Builder
	s := t.Summary
	fmt.Fprintf(&b, "trace %s: %d spans, %d agents, max hop %d, %d µs",
		s.ID, s.Spans, s.Agents, s.MaxHop, s.DurationMicros)
	if s.Errors > 0 {
		fmt.Fprintf(&b, ", %d errors", s.Errors)
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&b, ", %d spans dropped", s.Dropped)
	}
	b.WriteByte('\n')
	for i, n := range t.Roots {
		formatNode(&b, n, "", i == len(t.Roots)-1)
	}
	return b.String()
}

func formatNode(b *strings.Builder, n *Node, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	label := n.Op
	if n.Hop > 0 {
		label = fmt.Sprintf("%s[%d]", n.Op, n.Hop)
	}
	fmt.Fprintf(b, "%s%s%-22s %-24s %8d µs", prefix, branch, label, n.Agent, n.DurationMicros)
	if n.Err != "" {
		fmt.Fprintf(b, "  ERR %s", n.Err)
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		formatNode(b, c, childPrefix, i == len(n.Children)-1)
	}
}
