package recorder

import (
	"testing"
	"time"

	"infosleuth/internal/telemetry"
)

// BenchmarkRecordSpan measures the raw cost of one recorded span: the
// ring write, the dedup lookup, and the trace-store append.
//
//	go test -bench=RecordSpan -benchmem ./internal/telemetry/recorder
func BenchmarkRecordSpan(b *testing.B) {
	r := New(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordSpan(telemetry.Span{
			TraceID: "bench", Agent: "a", Op: "rpc.call",
			StartUnixNano: int64(i + 1), DurationMicros: 1,
		})
	}
}

// BenchmarkInstrumentedCallWithRecorder measures what an instrumented
// transport call pays with a flight recorder installed on top of the
// metrics path: the timestamp pair plus the telemetry.RecordSpan
// indirection into the recorder. This is the always-on configuration every
// daemon runs; the acceptance bound is < 1 µs per call.
func BenchmarkInstrumentedCallWithRecorder(b *testing.B) {
	rec := New(Options{})
	prev := telemetry.SetSpanRecorder(rec)
	defer telemetry.SetSpanRecorder(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		telemetry.RecordSpan(telemetry.Span{
			TraceID: "bench", Agent: "a", Op: "rpc.call",
			StartUnixNano: start.UnixNano(), DurationMicros: time.Since(start).Microseconds(),
		})
	}
}

// BenchmarkTailSampleDecision measures the tail-sampling decision on the
// untraced hot path: an outcome with no trace ID feeds the per-op
// quantile estimator and returns without pinning anything. This is the
// cost every root operation pays once the recorder is installed, so it is
// pinned in CI at 0 allocs/op (and must stay well under 1 µs).
//
//	go test -bench=TailSampleDecision -benchmem ./internal/telemetry/recorder
func BenchmarkTailSampleDecision(b *testing.B) {
	rec := New(Options{})
	prev := telemetry.SetRootObserver(rec)
	defer func() { telemetry.SetRootObserver(prev) }()
	// First observation allocates the op's sampler; keep it out of the
	// measured loop like a live daemon's steady state.
	telemetry.ObserveRoot(telemetry.RootOutcome{Op: "bench.op", DurationMicros: 100})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		telemetry.ObserveRoot(telemetry.RootOutcome{Op: "bench.op", DurationMicros: int64(100 + i%16)})
	}
}

// TestTailSampleDecisionOverhead asserts the acceptance bound directly,
// mirroring TestRecorderOverhead: the untraced sampling decision must
// average well under 1 µs.
func TestTailSampleDecisionOverhead(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing test (skipped under -short and -race)")
	}
	rec := New(Options{})
	prev := telemetry.SetRootObserver(rec)
	defer func() { telemetry.SetRootObserver(prev) }()
	const n = 200000
	start := time.Now()
	for i := 0; i < n; i++ {
		telemetry.ObserveRoot(telemetry.RootOutcome{Op: "bench.op", DurationMicros: int64(100 + i%16)})
	}
	per := time.Since(start) / n
	if per > time.Microsecond {
		t.Errorf("tail-sampling decision %v per root, want < 1µs", per)
	}
}

// TestRecorderOverhead asserts the acceptance bound directly: recording
// one span through the telemetry indirection must average well under
// 1 µs, so tracing can stay always-on in the daemons.
func TestRecorderOverhead(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing test (skipped under -short and -race)")
	}
	rec := New(Options{})
	prev := telemetry.SetSpanRecorder(rec)
	defer telemetry.SetSpanRecorder(prev)
	const n = 200000
	start := time.Now()
	for i := 0; i < n; i++ {
		telemetry.RecordSpan(telemetry.Span{
			TraceID: "bench", Agent: "a", Op: "rpc.call",
			StartUnixNano: int64(i + 1), DurationMicros: 1,
		})
	}
	per := time.Since(start) / n
	if per > time.Microsecond {
		t.Errorf("recorder overhead %v per span, want < 1µs", per)
	}
}

// TestUninstalledRecorderOverhead: with no recorder installed the span
// path must be nearly free (one atomic load), so untraced deployments pay
// nothing.
func TestUninstalledRecorderOverhead(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing test (skipped under -short and -race)")
	}
	if telemetry.SpanRecorderActive() {
		t.Skip("a recorder is installed globally")
	}
	const n = 1000000
	start := time.Now()
	for i := 0; i < n; i++ {
		if telemetry.SpanRecorderActive() {
			t.Fatal("unexpected recorder")
		}
	}
	per := time.Since(start) / n
	if per > 100*time.Nanosecond {
		t.Errorf("inactive-recorder check %v per call, want < 100ns", per)
	}
}
