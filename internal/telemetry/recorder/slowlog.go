package recorder

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"infosleuth/internal/telemetry"
)

// The tail-sampled slow-query log. Span recording is always on once a
// recorder is installed, but whole traces are only *pinned* here when
// they are worth a human's attention: the root latency beat the
// operation's rolling p99 estimate (see telemetry.TailSampler), or the
// operation ended in an error or a partial/degraded result. A pinned
// entry captures the trace's explain report eagerly, so it survives the
// trace store's eviction — the slowlog ring is the persistent record,
// served at /slowlog and dumped by `isquery -slowlog`.

// Slowlog pin reasons.
const (
	// ReasonSlow pins a root whose latency exceeded the rolling p99.
	ReasonSlow = "p99-exceeded"
	// ReasonError pins a root that failed outright.
	ReasonError = "error"
	// ReasonPartial pins a root that returned a degraded/partial result.
	ReasonPartial = "partial"
)

var (
	mSlowRoots = telemetry.Default.CounterVec("infosleuth_slowlog_roots_total",
		"Root operations observed by the tail sampler, by operation.", "op")
	mSlowPinned = telemetry.Default.CounterVec("infosleuth_slowlog_pinned_total",
		"Traces pinned into the slow-query log, by reason.", "reason")
)

// SlowEntry is one pinned trace in the slow-query log.
type SlowEntry struct {
	// TraceID is the pinned conversation.
	TraceID string `json:"trace_id"`
	// Op is the root operation that triggered the pin; Reason is why
	// (ReasonSlow, ReasonError, ReasonPartial).
	Op     string `json:"op"`
	Reason string `json:"reason"`
	// DurationMicros is the root latency; ThresholdMicros the rolling p99
	// estimate it was compared against (0 when pinned for error/partial
	// before the estimator warmed up).
	DurationMicros  int64 `json:"us"`
	ThresholdMicros int64 `json:"threshold_us,omitempty"`
	// AtUnixNano is when the root completed.
	AtUnixNano int64 `json:"at,omitempty"`
	// Explain is the trace's decision report, captured at pin time so it
	// outlives the trace store's eviction. Nil when the trace had no
	// recorded spans (e.g. an untraced error root).
	Explain *Explain `json:"explain,omitempty"`
}

// ObserveRoot implements telemetry.RootObserver: every root outcome feeds
// the per-operation p99 estimator, and outcomes that are slow, failed or
// degraded pin their trace into the slowlog ring. One trace is pinned at
// most once — a slow conversation reports a root at several layers (the
// resource query, the MRQ run, the user submission), and the outermost
// (longest) one wins.
func (r *Recorder) ObserveRoot(o telemetry.RootOutcome) {
	slow, threshold := r.sampler.Observe(o.Op, o.DurationMicros)
	mSlowRoots.With(o.Op).Inc()
	var reason string
	switch {
	case o.Err:
		reason = ReasonError
	case o.Degraded:
		reason = ReasonPartial
	case slow:
		reason = ReasonSlow
	default:
		return
	}
	if o.TraceID == "" {
		// Nothing to pin without a conversation; the outcome still moved
		// the threshold above.
		return
	}
	entry := SlowEntry{
		TraceID:         o.TraceID,
		Op:              o.Op,
		Reason:          reason,
		DurationMicros:  o.DurationMicros,
		ThresholdMicros: int64(threshold),
		AtUnixNano:      r.now().UnixNano(),
	}
	entry.Explain, _ = r.Explain(o.TraceID)
	r.pin(entry)
}

// pin inserts an entry into the bounded slow ring, replacing an existing
// entry for the same trace when the new root is at least as long (the
// outermost root of a conversation arrives last and covers the inner
// ones).
func (r *Recorder) pin(e SlowEntry) {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	n := r.slowHead
	if r.slowFilled {
		n = len(r.slow)
	}
	for i := 0; i < n; i++ {
		if r.slow[i].TraceID != e.TraceID {
			continue
		}
		if e.DurationMicros >= r.slow[i].DurationMicros {
			r.slow[i] = e
		}
		return
	}
	mSlowPinned.With(e.Reason).Inc()
	r.slow[r.slowHead] = e
	r.slowHead++
	if r.slowHead == len(r.slow) {
		r.slowHead = 0
		r.slowFilled = true
	}
}

// Slowlog returns up to limit pinned entries, newest first (limit <= 0
// means all).
func (r *Recorder) Slowlog(limit int) []SlowEntry {
	r.slowMu.Lock()
	n := r.slowHead
	start := 0
	if r.slowFilled {
		n = len(r.slow)
		start = r.slowHead
	}
	out := make([]SlowEntry, 0, n)
	// Walk the ring backwards from the most recent write.
	for i := n - 1; i >= 0; i-- {
		out = append(out, r.slow[(start+i)%len(r.slow)])
	}
	r.slowMu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// SlowlogHandler serves the slow-query log, meant to be mounted at
// /slowlog on the metrics endpoint:
//
//	/slowlog              JSON array of pinned entries, newest first
//	/slowlog?limit=N      at most N entries
//	/slowlog?format=text  the box-drawing text rendering
func (r *Recorder) SlowlogHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		limit := 0
		if v := req.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		entries := r.Slowlog(limit)
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, FormatSlowlog(entries))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if entries == nil {
			entries = []SlowEntry{}
		}
		_ = enc.Encode(entries)
	})
}

// FormatSlowlog renders pinned entries as text, one block per entry with
// its explain report indented beneath — the `isquery -slowlog` view.
func FormatSlowlog(entries []SlowEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "slowlog: %d pinned trace(s)\n", len(entries))
	for i, e := range entries {
		branch, childPrefix := "├─ ", "│  "
		if i == len(entries)-1 {
			branch, childPrefix = "└─ ", "   "
		}
		line := fmt.Sprintf("trace %s: %s %dµs", e.TraceID, e.Op, e.DurationMicros)
		switch e.Reason {
		case ReasonSlow:
			line += fmt.Sprintf(" (p99 was %dµs)", e.ThresholdMicros)
		default:
			line += " (" + e.Reason + ")"
		}
		if e.AtUnixNano != 0 {
			line += " at " + time.Unix(0, e.AtUnixNano).UTC().Format("15:04:05.000")
		}
		b.WriteString(branch + line + "\n")
		if e.Explain != nil {
			for _, l := range strings.Split(strings.TrimRight(e.Explain.Format(), "\n"), "\n") {
				b.WriteString(childPrefix + l + "\n")
			}
		}
	}
	return b.String()
}
