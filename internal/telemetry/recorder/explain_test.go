package recorder

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"infosleuth/internal/kqml"
	"infosleuth/internal/telemetry"
)

func matchEvent(agent, ad string, accepted bool) kqml.ProvEvent {
	md := &kqml.MatchDecision{Ad: ad, Engine: "linear", Accepted: accepted, Coverage: "covered", Specificity: 2}
	if !accepted {
		md.Specificity = 0
		md.Reason = "ontology mismatch"
	}
	return kqml.ProvEvent{Kind: kqml.ProvMatch, Agent: agent, Match: md}
}

func TestRecordProvDeduplicatesEnvelopeMirrors(t *testing.T) {
	r := New(Options{})
	ev := matchEvent("B1", "R1", true)
	r.RecordProv("t1", ev)
	r.RecordProv("t1", ev) // envelope mirror of the same decision
	sums := r.Summaries(0)
	if len(sums) != 1 || sums[0].Prov != 1 {
		t.Fatalf("Summaries = %+v, want one trace with one event after dedup", sums)
	}
}

func TestRecordProvBoundAndDroppedMarkers(t *testing.T) {
	r := New(Options{MaxProvPerTrace: 3})
	for i := 0; i < 5; i++ {
		r.RecordProv("t1", matchEvent("B1", fmt.Sprintf("R%d", i), true))
	}
	// An envelope-cap marker is accounted, not stored.
	r.RecordProv("t1", kqml.ProvEvent{Kind: kqml.ProvDropped, Dropped: 7})
	sums := r.Summaries(0)
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1", len(sums))
	}
	if sums[0].Prov != 3 || sums[0].ProvDropped != 2+7 {
		t.Fatalf("summary %+v, want 3 stored and 9 dropped (2 over bound + 7 from marker)", sums[0])
	}
}

func TestRecordProvIgnoresUntraced(t *testing.T) {
	r := New(Options{})
	r.RecordProv("", matchEvent("B1", "R1", true))
	if len(r.Summaries(0)) != 0 {
		t.Fatal("event without a trace ID must be ignored")
	}
}

// TestExplainGroupsByKind pins the report structure: one recorded event of
// each kind lands in its own group, and the rendered text carries every
// section with the decision details.
func TestExplainGroupsByKind(t *testing.T) {
	r := New(Options{})
	r.RecordProv("t1", matchEvent("B1", "R1", true))
	r.RecordProv("t1", matchEvent("B1", "R9", false))
	r.RecordProv("t1", kqml.ProvEvent{Kind: kqml.ProvForward, Agent: "B1",
		Forward: &kqml.ForwardDecision{Peer: "B2", Matches: 1}})
	r.RecordProv("t1", kqml.ProvEvent{Kind: kqml.ProvForward, Agent: "B1",
		Forward: &kqml.ForwardDecision{Peer: "B3", Skipped: "breaker open"}})
	r.RecordProv("t1", kqml.ProvEvent{Kind: kqml.ProvPushdown, Agent: "MRQ",
		Pushdown: &kqml.PushdownDecision{Class: "C1", Pushed: []string{"a >= 100"}, Columns: []string{"id", "a"}}})
	r.RecordProv("t1", kqml.ProvEvent{Kind: kqml.ProvFetch, Agent: "MRQ",
		Fetch: &kqml.FetchReport{Resource: "R1", Class: "C1", Pushed: true, Bytes: 412, LatencyMicros: 1032}})
	r.RecordProv("t1", kqml.ProvEvent{Kind: kqml.ProvFailover, Agent: "MRQ",
		Failover: &kqml.FailoverDecision{Class: "C1", Lost: "R3", CoveredBy: "R1", Note: "unreachable"}})
	r.RecordSpan(span("t1", "user", telemetry.OpUserSubmit, 0, 1_000_000, 900))

	ex, ok := r.Explain("t1")
	if !ok {
		t.Fatal("Explain: trace not found")
	}
	if len(ex.Matches) != 2 || len(ex.Forwards) != 2 || len(ex.Pushdowns) != 1 ||
		len(ex.Fetches) != 1 || len(ex.Failovers) != 1 {
		t.Fatalf("groups = %d/%d/%d/%d/%d, want 2/2/1/1/1",
			len(ex.Matches), len(ex.Forwards), len(ex.Pushdowns), len(ex.Fetches), len(ex.Failovers))
	}
	if ex.Tree == nil || len(ex.Tree.Roots) != 1 {
		t.Fatalf("Tree = %+v, want the span tree attached", ex.Tree)
	}
	got := ex.Format()
	for _, want := range []string{
		"explain trace t1: 7 decisions, 1 spans",
		"matchmaking",
		"B1: accept R1  [specificity 2, constraints covered]  (linear, cache miss, gen 0)",
		"B1: reject R9  — ontology mismatch",
		"B1 → B2: 1 match(es)",
		"B1 → B3: skipped (breaker open)",
		"C1 @ MRQ: pushed [a >= 100]; cols [id a]",
		"C1 ← R1: 412 B in 1032 µs  (pushed)",
		"C1: lost R3 → covered by R1 (unreachable)",
		"useragent.submit",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Format() missing %q:\n%s", want, got)
		}
	}
}

func TestExplainUnknownTrace(t *testing.T) {
	r := New(Options{})
	if _, ok := r.Explain("nope"); ok {
		t.Fatal("Explain of an unknown trace must report !ok")
	}
}

func TestHTTPExplainRoute(t *testing.T) {
	r := New(Options{})
	r.RecordProv("t1", matchEvent("B1", "R1", true))
	r.RecordSpan(span("t1", "user", telemetry.OpUserSubmit, 0, 1_000_000, 900))
	h := r.Handler()

	req := httptest.NewRequest("GET", "/traces/t1/explain", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("GET /traces/t1/explain = %d, want 200", w.Code)
	}
	var ex Explain
	if err := json.Unmarshal(w.Body.Bytes(), &ex); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(ex.Matches) != 1 || ex.Matches[0].Match == nil || ex.Matches[0].Match.Ad != "R1" {
		t.Fatalf("explain body = %+v, want the match decision", ex)
	}
	if ex.Tree == nil || ex.Summary.ID != "t1" {
		t.Fatalf("explain body = %+v, want tree and summary", ex)
	}

	req = httptest.NewRequest("GET", "/traces/absent/explain", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 404 {
		t.Fatalf("GET /traces/absent/explain = %d, want 404", w.Code)
	}
}

// TestDegradedTraceAssembly is the partial-result shape: one fetch's RPC
// dies (error spans), a failover span records the replica recovery, and a
// second fetch succeeds. The error spans must still nest under the fetch
// that issued them, and nothing leaks to the roots.
func TestDegradedTraceAssembly(t *testing.T) {
	r := New(Options{})
	const us = int64(1000) // ns per µs
	// Delivered deliberately out of order, as concurrent fan-out does.
	r.RecordSpan(span("t1", "MRQ", telemetry.OpMRQFetch, 0, 210*us, 30))
	errRPC := span("t1", "MRQ", telemetry.OpRPCCall, 0, 215*us, 5)
	errRPC.Err = "transport: peer unreachable"
	r.RecordSpan(errRPC)
	r.RecordSpan(span("t1", "user", telemetry.OpUserSubmit, 0, 100*us, 500))
	fail := span("t1", "R1", telemetry.OpFailover, 0, 250*us, 1)
	fail.Err = "transport: peer unreachable"
	r.RecordSpan(fail)
	r.RecordSpan(span("t1", "MRQ", telemetry.OpMRQAssemble, 0, 200*us, 300))
	r.RecordSpan(span("t1", "MRQ", telemetry.OpMRQFetch, 0, 260*us, 100))
	r.RecordSpan(span("t1", "R2", telemetry.OpResourceQuery, 0, 280*us, 50))
	r.RecordSpan(span("t1", "MRQ", telemetry.OpMRQRun, 0, 150*us, 400))

	tree, ok := r.Trace("t1")
	if !ok {
		t.Fatal("trace not assembled")
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Op != telemetry.OpUserSubmit {
		t.Fatalf("roots = %+v, want the single useragent.submit root", tree.Roots)
	}
	if tree.Summary.Errors != 2 {
		t.Errorf("Errors = %d, want 2 (failed RPC + failover note)", tree.Summary.Errors)
	}

	// Walk: submit > run > assemble > {fetch(err rpc), failover, fetch > query}.
	var find func(n *Node, op string) *Node
	find = func(n *Node, op string) *Node {
		if n.Op == op {
			return n
		}
		for _, c := range n.Children {
			if hit := find(c, op); hit != nil {
				return hit
			}
		}
		return nil
	}
	assemble := find(tree.Roots[0], telemetry.OpMRQAssemble)
	if assemble == nil {
		t.Fatalf("mrq.assemble not under the root:\n%s", tree.Format())
	}
	if len(assemble.Children) != 3 {
		t.Fatalf("assemble has %d children, want 3 (two fetches + failover):\n%s",
			len(assemble.Children), tree.Format())
	}
	failedFetch := assemble.Children[0]
	if failedFetch.Op != telemetry.OpMRQFetch || len(failedFetch.Children) != 1 ||
		failedFetch.Children[0].Err == "" {
		t.Errorf("failed fetch shape wrong: %+v", failedFetch)
	}
	if fo := find(assemble, telemetry.OpFailover); fo == nil || fo.Agent != "R1" {
		t.Errorf("failover span misplaced:\n%s", tree.Format())
	}
	okFetch := assemble.Children[2]
	if okFetch.Op != telemetry.OpMRQFetch || find(okFetch, telemetry.OpResourceQuery) == nil {
		t.Errorf("successful fetch lost its resource.query child:\n%s", tree.Format())
	}
}
