package recorder

import (
	"fmt"
	"strings"

	"infosleuth/internal/kqml"
)

// Explain is one trace's decision-provenance report: every recorded
// decision event grouped by kind, plus the assembled span tree. It is
// the JSON body of /traces/{id}/explain and the structure behind
// `isquery -explain`.
type Explain struct {
	Summary   Summary          `json:"summary"`
	Matches   []kqml.ProvEvent `json:"matches,omitempty"`
	Forwards  []kqml.ProvEvent `json:"forwards,omitempty"`
	Plans     []kqml.ProvEvent `json:"plans,omitempty"`
	Pushdowns []kqml.ProvEvent `json:"pushdowns,omitempty"`
	Fetches   []kqml.ProvEvent `json:"fetches,omitempty"`
	Failovers []kqml.ProvEvent `json:"failovers,omitempty"`
	Tree      *Tree            `json:"tree,omitempty"`
}

// Explain assembles the explain report for one trace ID. It exists as
// soon as the trace holds any span or event.
func (r *Recorder) Explain(id string) (*Explain, bool) {
	r.mu.Lock()
	t, ok := r.traces[id]
	var prov []kqml.ProvEvent
	var sum Summary
	if ok {
		prov = append([]kqml.ProvEvent(nil), t.prov...)
		sum = t.summary()
	}
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	tree, _ := r.Trace(id)
	ex := &Explain{Summary: sum, Tree: tree}
	for _, ev := range prov {
		switch ev.Kind {
		case kqml.ProvMatch:
			ex.Matches = append(ex.Matches, ev)
		case kqml.ProvForward:
			ex.Forwards = append(ex.Forwards, ev)
		case kqml.ProvPlan:
			ex.Plans = append(ex.Plans, ev)
		case kqml.ProvPushdown:
			ex.Pushdowns = append(ex.Pushdowns, ev)
		case kqml.ProvFetch:
			ex.Fetches = append(ex.Fetches, ev)
		case kqml.ProvFailover:
			ex.Failovers = append(ex.Failovers, ev)
		}
	}
	return ex, true
}

// Format renders the explain report as a box-drawing text tree: one
// section per decision kind (matchmaking, forwarding, pushdown, fetch,
// failover), then the span tree.
func (e *Explain) Format() string {
	var b strings.Builder
	s := e.Summary
	decisions := len(e.Matches) + len(e.Forwards) + len(e.Plans) + len(e.Pushdowns) + len(e.Fetches) + len(e.Failovers)
	fmt.Fprintf(&b, "explain trace %s: %d decisions, %d spans, %d agents, %d µs",
		s.ID, decisions, s.Spans, s.Agents, s.DurationMicros)
	if s.Errors > 0 {
		fmt.Fprintf(&b, ", %d errors", s.Errors)
	}
	if s.ProvDropped > 0 {
		fmt.Fprintf(&b, ", %d decisions dropped", s.ProvDropped)
	}
	b.WriteByte('\n')

	type section struct {
		title string
		lines []string
	}
	var sections []section
	add := func(title string, lines []string) {
		if len(lines) > 0 {
			sections = append(sections, section{title, lines})
		}
	}
	add("matchmaking", matchLines(e.Matches))
	add("forwarding", forwardLines(e.Forwards))
	add("plan", planLines(e.Plans))
	add("pushdown", pushdownLines(e.Pushdowns))
	add("fetch", fetchLines(e.Fetches))
	add("failover", failoverLines(e.Failovers))
	if e.Tree != nil && len(e.Tree.Roots) > 0 {
		var lines []string
		var tb strings.Builder
		for i, n := range e.Tree.Roots {
			formatNode(&tb, n, "", i == len(e.Tree.Roots)-1)
		}
		for _, l := range strings.Split(strings.TrimRight(tb.String(), "\n"), "\n") {
			lines = append(lines, l)
		}
		add("spans", lines)
	}

	for si, sec := range sections {
		branch, childPrefix := "├─ ", "│  "
		if si == len(sections)-1 {
			branch, childPrefix = "└─ ", "   "
		}
		b.WriteString(branch + sec.title + "\n")
		for li, l := range sec.lines {
			inner := "├─ "
			if li == len(sec.lines)-1 {
				inner = "└─ "
			}
			if sec.title == "spans" {
				// The span tree carries its own box-drawing structure.
				b.WriteString(childPrefix + l + "\n")
				continue
			}
			b.WriteString(childPrefix + inner + l + "\n")
		}
	}
	return b.String()
}

func matchLines(events []kqml.ProvEvent) []string {
	var out []string
	for _, ev := range events {
		m := ev.Match
		if m == nil {
			continue
		}
		verdict := "reject"
		if m.Accepted {
			verdict = "accept"
		}
		line := fmt.Sprintf("%s: %s %s", ev.Agent, verdict, m.Ad)
		if m.Accepted {
			line += fmt.Sprintf("  [specificity %d", m.Specificity)
			if m.Coverage != "" {
				line += ", constraints " + m.Coverage
			}
			line += "]"
		} else if m.Reason != "" {
			line += "  — " + m.Reason
		}
		cache := "miss"
		if m.CacheHit {
			cache = "hit"
		}
		if m.Engine != "" {
			line += fmt.Sprintf("  (%s, cache %s, gen %d)", m.Engine, cache, m.Generation)
		}
		out = append(out, line)
	}
	return out
}

func forwardLines(events []kqml.ProvEvent) []string {
	var out []string
	for _, ev := range events {
		f := ev.Forward
		if f == nil {
			continue
		}
		line := fmt.Sprintf("%s → %s", ev.Agent, f.Peer)
		switch {
		case f.Skipped != "":
			line += ": skipped (" + f.Skipped + ")"
		case f.Err != "":
			line += ": ERR " + f.Err
		default:
			line += fmt.Sprintf(": %d match(es)", f.Matches)
		}
		out = append(out, line)
	}
	return out
}

func planLines(events []kqml.ProvEvent) []string {
	var out []string
	for _, ev := range events {
		p := ev.Plan
		if p == nil {
			continue
		}
		line := p.Class
		if ev.Agent != "" {
			line = fmt.Sprintf("%s @ %s", p.Class, ev.Agent)
		}
		var parts []string
		switch {
		case p.SemiJoin:
			// Keys is 0 on plan-only reports: the count is unknown until
			// the build side is actually fetched.
			sj := fmt.Sprintf("semi-join: build %s, push %s IN keys to %s", p.Build, p.JoinColumn, p.Probe)
			if p.Keys > 0 {
				sj = fmt.Sprintf("semi-join: build %s, push %s IN (%d keys) to %s", p.Build, p.JoinColumn, p.Keys, p.Probe)
			}
			parts = append(parts, sj)
		case len(p.Aggregates) > 0:
			parts = append(parts, "push aggregates ["+strings.Join(p.Aggregates, " ")+"]")
		}
		if len(p.Order) > 0 {
			if len(p.CostsMicros) == len(p.Order) {
				ranked := make([]string, len(p.Order))
				for i, name := range p.Order {
					ranked[i] = fmt.Sprintf("%s(%dµs)", name, p.CostsMicros[i])
				}
				parts = append(parts, "fetch order ["+strings.Join(ranked, " ")+"]")
			} else {
				parts = append(parts, "fetch order ["+strings.Join(p.Order, " ")+"] (no stats signal; broker order kept)")
			}
		}
		if p.Fallback != "" {
			parts = append(parts, "fallback: "+p.Fallback)
		}
		if len(parts) == 0 {
			parts = append(parts, "no rewrite")
		}
		out = append(out, line+": "+strings.Join(parts, "; "))
	}
	return out
}

func pushdownLines(events []kqml.ProvEvent) []string {
	var out []string
	for _, ev := range events {
		p := ev.Pushdown
		if p == nil {
			continue
		}
		line := p.Class
		if ev.Agent != "" {
			line = fmt.Sprintf("%s @ %s", p.Class, ev.Agent)
		}
		var parts []string
		if len(p.Pushed) > 0 {
			parts = append(parts, "pushed ["+strings.Join(p.Pushed, " AND ")+"]")
		}
		if len(p.Columns) > 0 {
			parts = append(parts, "cols ["+strings.Join(p.Columns, " ")+"]")
		}
		for _, bl := range p.Blocked {
			parts = append(parts, "blocked "+bl)
		}
		if p.Fallback != "" {
			parts = append(parts, "fallback: "+p.Fallback)
		}
		if len(parts) == 0 {
			parts = append(parts, "nothing to push")
		}
		out = append(out, line+": "+strings.Join(parts, "; "))
	}
	return out
}

func fetchLines(events []kqml.ProvEvent) []string {
	var out []string
	for _, ev := range events {
		f := ev.Fetch
		if f == nil {
			continue
		}
		line := fmt.Sprintf("%s ← %s: %d B in %d µs", f.Class, f.Resource, f.Bytes, f.LatencyMicros)
		switch {
		case f.Err != "":
			line += "  ERR " + f.Err
		case f.Fallback:
			line += "  (pushdown rejected, fell back to SELECT *)"
		case f.Pushed:
			line += "  (pushed)"
		}
		out = append(out, line)
	}
	return out
}

func failoverLines(events []kqml.ProvEvent) []string {
	var out []string
	for _, ev := range events {
		f := ev.Failover
		if f == nil {
			continue
		}
		line := fmt.Sprintf("%s: lost %s", f.Class, f.Lost)
		if f.CoveredBy != "" {
			line += " → covered by " + f.CoveredBy
		} else {
			line += " → DEGRADED"
		}
		if f.Note != "" {
			line += " (" + f.Note + ")"
		}
		out = append(out, line)
	}
	return out
}
