package recorder

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Handler serves the recorder over HTTP, meant to be mounted on the
// metrics endpoint at both /traces and /traces/ (see telemetry.WithHandler):
//
//	/traces              JSON array of trace summaries, most recent first
//	/traces?limit=N      at most N summaries
//	/traces/{id}         the assembled tree for one trace (404 if unknown)
//	/traces/{id}/explain the decision-provenance explain report
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := strings.Trim(strings.TrimPrefix(req.URL.Path, "/traces"), "/")
		explain := false
		if rest, ok := strings.CutSuffix(id, "/explain"); ok {
			id, explain = rest, true
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			limit := 0
			if v := req.URL.Query().Get("limit"); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					http.Error(w, "bad limit", http.StatusBadRequest)
					return
				}
				limit = n
			}
			sums := r.Summaries(limit)
			if sums == nil {
				sums = []Summary{}
			}
			_ = enc.Encode(sums)
			return
		}
		if explain {
			ex, ok := r.Explain(id)
			if !ok {
				http.Error(w, "unknown trace", http.StatusNotFound)
				return
			}
			_ = enc.Encode(ex)
			return
		}
		tree, ok := r.Trace(id)
		if !ok {
			http.Error(w, "unknown trace", http.StatusNotFound)
			return
		}
		_ = enc.Encode(tree)
	})
}
