package recorder

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"infosleuth/internal/telemetry"
)

func span(trace, agent, op string, hop int, start, us int64) telemetry.Span {
	return telemetry.Span{
		TraceID: trace, Agent: agent, Op: op, Hop: hop,
		StartUnixNano: start, DurationMicros: us,
	}
}

func TestRingEvictionOrderAndDrops(t *testing.T) {
	r := New(Options{SpanCapacity: 4})
	for i := 0; i < 6; i++ {
		r.RecordSpan(span("t", fmt.Sprintf("a%d", i), "op", 0, int64(i+1), 1))
	}
	if got := r.Drops(); got != 2 {
		t.Fatalf("Drops() = %d, want 2 (6 spans through a 4-slot ring)", got)
	}
	spans := r.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest first: a2..a5 survive, a0/a1 were overwritten.
	for i, s := range spans {
		if want := fmt.Sprintf("a%d", i+2); s.Agent != want {
			t.Errorf("spans[%d].Agent = %q, want %q", i, s.Agent, want)
		}
	}
	if limited := r.Spans(2); len(limited) != 2 || limited[0].Agent != "a4" {
		t.Errorf("Spans(2) = %+v, want the 2 newest (a4, a5)", limited)
	}
}

func TestUntracedSpansIgnored(t *testing.T) {
	r := New(Options{})
	r.RecordSpan(telemetry.Span{Agent: "a", Op: "op"})
	if len(r.Spans(0)) != 0 || len(r.Summaries(0)) != 0 {
		t.Fatal("span without a trace ID must be ignored")
	}
}

func TestTraceDeduplication(t *testing.T) {
	r := New(Options{})
	s := span("t1", "agent", "broker.search", 1, 100, 50)
	r.RecordSpan(s)
	r.RecordSpan(s) // envelope mirror of the same span
	sums := r.Summaries(0)
	if len(sums) != 1 || sums[0].Spans != 1 {
		t.Fatalf("Summaries = %+v, want one trace with one span after dedup", sums)
	}
}

func TestTraceSummaryFields(t *testing.T) {
	r := New(Options{})
	r.RecordSpan(span("t1", "user", "useragent.submit", 0, 1_000_000, 900))
	r.RecordSpan(span("t1", "b1", "broker.search", 0, 1_100_000, 300))
	r.RecordSpan(span("t1", "b2", "broker.search", 1, 1_200_000, 100))
	errSpan := span("t1", "res", "resource.query", 0, 1_300_000, 10)
	errSpan.Err = "boom"
	r.RecordSpan(errSpan)
	sums := r.Summaries(0)
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1", len(sums))
	}
	s := sums[0]
	if s.Spans != 4 || s.Agents != 4 || s.MaxHop != 1 || s.Errors != 1 {
		t.Errorf("summary %+v: want 4 spans, 4 agents, max hop 1, 1 error", s)
	}
	if s.StartUnixNano != 1_000_000 {
		t.Errorf("StartUnixNano = %d, want earliest start 1000000", s.StartUnixNano)
	}
	// Latest end: user span 1_000_000 + 900µs = 901_000_000 ns.
	if s.DurationMicros != 900 {
		t.Errorf("DurationMicros = %d, want 900", s.DurationMicros)
	}
}

func TestDroppedMarkerAccounting(t *testing.T) {
	r := New(Options{})
	r.RecordSpan(span("t1", "a", "op", 0, 1, 1))
	marker := telemetry.Span{TraceID: "t1", Op: telemetry.OpTraceDropped, Dropped: 7}
	r.RecordSpan(marker)
	sums := r.Summaries(0)
	if len(sums) != 1 || sums[0].Dropped != 7 || sums[0].Spans != 1 {
		t.Fatalf("Summaries = %+v, want dropped=7 and the marker not stored", sums)
	}
}

func TestPerTraceSpanBound(t *testing.T) {
	r := New(Options{MaxSpansPerTrace: 3})
	for i := 0; i < 5; i++ {
		r.RecordSpan(span("t1", fmt.Sprintf("a%d", i), "op", 0, int64(i+1), 1))
	}
	sums := r.Summaries(0)
	if sums[0].Spans != 3 || sums[0].Dropped != 2 {
		t.Fatalf("summary %+v, want 3 stored and 2 dropped", sums[0])
	}
}

func TestTraceEvictionByCountAndAge(t *testing.T) {
	r := New(Options{MaxTraces: 2, MaxTraceAge: time.Minute})
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }

	r.RecordSpan(span("t1", "a", "op", 0, 1, 1))
	now = now.Add(time.Second)
	r.RecordSpan(span("t2", "a", "op", 0, 2, 1))
	now = now.Add(time.Second)
	r.RecordSpan(span("t3", "a", "op", 0, 3, 1)) // evicts t1 (LRU)
	if _, ok := r.Trace("t1"); ok {
		t.Fatal("t1 should have been evicted as least recently updated")
	}
	if _, ok := r.Trace("t2"); !ok {
		t.Fatal("t2 should survive count eviction")
	}

	// Age: everything stops updating, a new trace 2 minutes later evicts
	// the aged-out rest.
	now = now.Add(2 * time.Minute)
	r.RecordSpan(span("t4", "a", "op", 0, 4, 1))
	if _, ok := r.Trace("t2"); ok {
		t.Fatal("t2 should have aged out")
	}
	if _, ok := r.Trace("t4"); !ok {
		t.Fatal("t4 should be present")
	}
}

func TestSummariesMostRecentFirst(t *testing.T) {
	r := New(Options{})
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }
	r.RecordSpan(span("old", "a", "op", 0, 1, 1))
	now = now.Add(time.Second)
	r.RecordSpan(span("new", "a", "op", 0, 2, 1))
	sums := r.Summaries(0)
	if len(sums) != 2 || sums[0].ID != "new" || sums[1].ID != "old" {
		t.Fatalf("Summaries order = %v, want [new old]", []string{sums[0].ID, sums[1].ID})
	}
	if limited := r.Summaries(1); len(limited) != 1 || limited[0].ID != "new" {
		t.Fatalf("Summaries(1) = %+v, want just the newest", limited)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(Options{SpanCapacity: 64, MaxTraces: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.RecordSpan(span(fmt.Sprintf("t%d", g%4), fmt.Sprintf("a%d", g), "op", 0, int64(g*1000+i+1), 1))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Summaries(0)
			r.Spans(10)
			r.Trace("t0")
		}
	}()
	wg.Wait()
	<-done
	if len(r.Summaries(0)) == 0 {
		t.Fatal("no traces recorded")
	}
}

// TestOutOfOrderAssembly feeds spans in scrambled order and expects the
// same nesting timing implies: a root enclosing a broker hop enclosing a
// forwarded hop, with a concurrent sibling RPC kept at the right level.
func TestOutOfOrderAssembly(t *testing.T) {
	r := New(Options{})
	ms := int64(1_000_000)
	// Arrival order is deliberately inside-out.
	r.RecordSpan(span("t", "Broker2", "broker.search", 1, 40*ms, 10_000))  // forwarded hop
	r.RecordSpan(span("t", "user", "useragent.submit", 0, 10*ms, 100_000)) // root (earliest)
	r.RecordSpan(span("t", "user", "rpc.call", 0, 20*ms, 40_000))          // user -> broker1
	r.RecordSpan(span("t", "Broker1", "broker.search", 0, 30*ms, 25_000))  // entry hop
	r.RecordSpan(span("t", "Broker1", "rpc.call", 0, 35*ms, 18_000))       // broker1 -> broker2
	r.RecordSpan(span("t", "user", "rpc.call", 0, 70*ms, 20_000))          // second, later sibling RPC

	tree, ok := r.Trace("t")
	if !ok {
		t.Fatal("trace not found")
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Op != "useragent.submit" {
		t.Fatalf("roots = %+v, want single useragent.submit root", tree.Roots)
	}
	root := tree.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 sibling rpc.calls", len(root.Children))
	}
	first := root.Children[0]
	if first.Op != "rpc.call" || len(first.Children) != 1 || first.Children[0].Op != "broker.search" {
		t.Fatalf("first child chain wrong: %+v", first)
	}
	entry := first.Children[0]
	if entry.Hop != 0 || len(entry.Children) != 1 {
		t.Fatalf("entry broker hop wrong: %+v", entry)
	}
	fwd := entry.Children[0]
	if fwd.Op != "rpc.call" || len(fwd.Children) != 1 || fwd.Children[0].Hop != 1 {
		t.Fatalf("forwarded hop not nested under the inter-broker call: %+v", fwd)
	}
	if sib := root.Children[1]; sib.Op != "rpc.call" || sib.StartUnixNano != 70*ms {
		t.Fatalf("second sibling call wrong: %+v", sib)
	}
}

// TestSameAgentRPCSiblings: two concurrent fan-out calls from one agent
// where one window covers the other must not nest.
func TestSameAgentRPCSiblings(t *testing.T) {
	r := New(Options{})
	r.RecordSpan(span("t", "Broker1", "broker.search", 0, 100, 100_000))
	r.RecordSpan(span("t", "Broker1", "rpc.call", 0, 1_000, 90_000)) // long call
	r.RecordSpan(span("t", "Broker1", "rpc.call", 0, 2_000, 10_000)) // covered by it
	tree, _ := r.Trace("t")
	if len(tree.Roots) != 1 {
		t.Fatalf("want single root, got %d", len(tree.Roots))
	}
	if n := len(tree.Roots[0].Children); n != 2 {
		t.Fatalf("same-agent rpc.calls must stay siblings; root has %d children", n)
	}
}

// TestHopChainFallback: a broker span without timing still lands under
// the hop above it.
func TestHopChainFallback(t *testing.T) {
	r := New(Options{})
	r.RecordSpan(span("t", "Broker1", "broker.search", 0, 1_000, 50_000))
	r.RecordSpan(span("t", "Broker2", "broker.search", 1, 0, 10)) // no Start
	tree, _ := r.Trace("t")
	if len(tree.Roots) != 1 {
		t.Fatalf("want single root, got %d roots", len(tree.Roots))
	}
	kids := tree.Roots[0].Children
	if len(kids) != 1 || kids[0].Agent != "Broker2" || kids[0].Hop != 1 {
		t.Fatalf("hop-1 span without timing should attach under hop 0, got %+v", kids)
	}
}

func TestFormatRendersTree(t *testing.T) {
	r := New(Options{})
	r.RecordSpan(span("t", "user", "useragent.submit", 0, 1_000, 2_000))
	e := span("t", "Broker1", "broker.search", 1, 2_000, 500)
	e.Err = "no matches"
	r.RecordSpan(e)
	tree, _ := r.Trace("t")
	text := tree.Format()
	for _, want := range []string{"trace t:", "useragent.submit", "broker.search[1]", "ERR no matches", "1 errors"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}

func TestHTTPTraceEndpoints(t *testing.T) {
	r := New(Options{})
	r.RecordSpan(span("abc123", "user", "useragent.submit", 0, 1_000, 500))
	r.RecordSpan(span("abc123", "Broker1", "broker.search", 0, 1_500, 100))
	h := r.Handler()

	// Listing.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces", nil))
	if rw.Code != 200 || !strings.Contains(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("GET /traces: code %d content-type %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	var sums []Summary
	if err := json.Unmarshal(rw.Body.Bytes(), &sums); err != nil {
		t.Fatalf("summaries JSON: %v", err)
	}
	if len(sums) != 1 || sums[0].ID != "abc123" || sums[0].Spans != 2 {
		t.Fatalf("summaries = %+v", sums)
	}

	// Full tree.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces/abc123", nil))
	if rw.Code != 200 {
		t.Fatalf("GET /traces/abc123: code %d", rw.Code)
	}
	var tree Tree
	if err := json.Unmarshal(rw.Body.Bytes(), &tree); err != nil {
		t.Fatalf("tree JSON: %v", err)
	}
	if tree.Summary.ID != "abc123" || len(tree.Roots) != 1 || tree.Roots[0].Op != "useragent.submit" {
		t.Fatalf("tree = %+v", tree)
	}

	// Unknown trace.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces/nope", nil))
	if rw.Code != 404 {
		t.Fatalf("GET /traces/nope: code %d, want 404", rw.Code)
	}

	// Bad limit.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces?limit=x", nil))
	if rw.Code != 400 {
		t.Fatalf("GET /traces?limit=x: code %d, want 400", rw.Code)
	}

	// Empty recorder lists as [], not null.
	empty := New(Options{})
	rw = httptest.NewRecorder()
	empty.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/traces", nil))
	if got := strings.TrimSpace(rw.Body.String()); got != "[]" {
		t.Fatalf("empty listing = %q, want []", got)
	}
}

func TestInstalledRecorderReceivesSpans(t *testing.T) {
	r := New(Options{})
	prev := telemetry.SetSpanRecorder(r)
	defer telemetry.SetSpanRecorder(prev)
	if !telemetry.SpanRecorderActive() {
		t.Fatal("SpanRecorderActive() = false after install")
	}
	telemetry.RecordSpan(span("t", "a", "op", 0, 1, 1))
	telemetry.RecordSpan(telemetry.Span{Agent: "a", Op: "op"}) // no trace ID: dropped
	if got := len(r.Spans(0)); got != 1 {
		t.Fatalf("recorder holds %d spans, want 1", got)
	}
	telemetry.SetSpanRecorder(prev)
	telemetry.RecordSpan(span("t", "a", "op2", 0, 2, 1))
	if got := len(r.Spans(0)); got != 1 {
		t.Fatalf("uninstalled recorder still received spans (%d)", got)
	}
}
