// Package recorder is the in-process flight recorder behind the
// conversation tracing of PR 1: a bounded ring buffer of completed spans
// plus a trace store that assembles spans sharing a trace ID into trace
// trees (entry hop → forwarded hops, per-hop durations, error status).
//
// The recorder implements telemetry.SpanRecorder; installing one with
// telemetry.SetSpanRecorder makes every instrumented hop in the process —
// agent dispatch, client RPCs, broker searches at every forwarding depth,
// MRQ fan-out, resource query execution — record into it, and spans
// carried back on reply envelopes are mirrored in by the transport layer,
// so one traced user query yields one assembled tree spanning user agent,
// brokers and resources. Daemons expose it at /traces (summaries) and
// /traces/{id} (the full tree) on the metrics endpoint; `isquery
// -trace-dump` and `experiments -run traces` render the same tree as
// text.
//
// Everything is bounded: the span ring holds SpanCapacity spans (oldest
// overwritten, drops counted), traces are evicted by count and age, and a
// single trace keeps at most MaxSpansPerTrace spans — a recorder can run
// in a loaded broker indefinitely without growing.
package recorder

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"infosleuth/internal/kqml"
	"infosleuth/internal/telemetry"
)

// Defaults for Options zero values.
const (
	DefaultSpanCapacity     = 4096
	DefaultMaxTraces        = 256
	DefaultMaxSpansPerTrace = 512
	DefaultMaxProvPerTrace  = 256
	DefaultMaxTraceAge      = 10 * time.Minute
	DefaultSlowlogCapacity  = 128
)

// Options bounds a Recorder.
type Options struct {
	// SpanCapacity is the span ring size; when full the oldest span is
	// overwritten and the drop counter incremented. Zero means
	// DefaultSpanCapacity.
	SpanCapacity int
	// MaxTraces bounds how many distinct traces are kept assembled; the
	// least recently updated whole trace is evicted first. Zero means
	// DefaultMaxTraces.
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's stored spans (a runaway fan-out
	// cannot monopolize the store); further spans are counted as dropped
	// on that trace. Zero means DefaultMaxSpansPerTrace.
	MaxSpansPerTrace int
	// MaxProvPerTrace bounds one trace's stored provenance events the
	// same way. Zero means DefaultMaxProvPerTrace.
	MaxProvPerTrace int
	// MaxTraceAge evicts traces not updated for this long. Zero means
	// DefaultMaxTraceAge.
	MaxTraceAge time.Duration
	// SlowlogCapacity bounds the tail-sampled slow-query log ring (see
	// slowlog.go); oldest pinned entries are overwritten. Zero means
	// DefaultSlowlogCapacity.
	SlowlogCapacity int
}

func (o Options) withDefaults() Options {
	if o.SpanCapacity <= 0 {
		o.SpanCapacity = DefaultSpanCapacity
	}
	if o.MaxTraces <= 0 {
		o.MaxTraces = DefaultMaxTraces
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	if o.MaxProvPerTrace <= 0 {
		o.MaxProvPerTrace = DefaultMaxProvPerTrace
	}
	if o.MaxTraceAge <= 0 {
		o.MaxTraceAge = DefaultMaxTraceAge
	}
	if o.SlowlogCapacity <= 0 {
		o.SlowlogCapacity = DefaultSlowlogCapacity
	}
	return o
}

// spanKey identifies a span within a trace for deduplication: on an
// in-process transport the same span reaches the recorder twice — once
// recorded locally by the agent that produced it and once mirrored from
// the reply envelope it rode back on.
type spanKey struct {
	agent string
	op    string
	hop   int
	start int64
	dur   int64
}

func keyOf(s telemetry.Span) spanKey {
	return spanKey{agent: s.Agent, op: s.Op, hop: s.Hop, start: s.StartUnixNano, dur: s.DurationMicros}
}

// trace is one trace ID's accumulated state.
type trace struct {
	id         string
	spans      []telemetry.Span
	seen       map[spanKey]struct{}
	dropped    int64 // envelope-marker drops + per-trace overflow
	errors     int
	lastUpdate time.Time

	// Decision provenance for the trace: events recorded locally and
	// mirrored from reply envelopes, deduplicated by content (provSeen
	// keys are the events' JSON encodings — unlike spans there is no
	// natural identity tuple).
	prov        []kqml.ProvEvent
	provSeen    map[string]struct{}
	provDropped int64
}

// Recorder is a bounded flight recorder; create one with New. It is safe
// for concurrent use and never blocks on record.
type Recorder struct {
	opts Options

	drops atomic.Int64 // ring overwrites

	mu     sync.Mutex
	ring   []telemetry.Span
	head   int // next write index
	filled bool
	traces map[string]*trace

	// Tail-sampled slow-query log (see slowlog.go). The sampler keeps the
	// rolling per-operation p99 thresholds; the slow ring holds pinned
	// entries under its own lock so pinning never contends with span
	// recording.
	sampler    *telemetry.TailSampler
	slowMu     sync.Mutex
	slow       []SlowEntry
	slowHead   int
	slowFilled bool

	// now is swappable for eviction tests.
	now func() time.Time
}

// New returns a Recorder with the given bounds.
func New(opts Options) *Recorder {
	o := opts.withDefaults()
	return &Recorder{
		opts:    o,
		ring:    make([]telemetry.Span, o.SpanCapacity),
		traces:  make(map[string]*trace),
		sampler: telemetry.NewTailSampler(),
		slow:    make([]SlowEntry, o.SlowlogCapacity),
		now:     time.Now,
	}
}

// RecordSpan implements telemetry.SpanRecorder: the span enters the ring
// (evicting the oldest when full) and its trace's store.
func (r *Recorder) RecordSpan(s telemetry.Span) {
	if s.TraceID == "" {
		return
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()

	// Ring: fixed capacity, oldest overwritten, drops counted.
	if r.filled {
		r.drops.Add(1)
	}
	r.ring[r.head] = s
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
		r.filled = true
	}

	// Trace store.
	t, ok := r.traces[s.TraceID]
	if !ok {
		r.evictLocked(now)
		t = &trace{id: s.TraceID, seen: make(map[spanKey]struct{})}
		r.traces[s.TraceID] = t
	}
	t.lastUpdate = now
	if s.Op == telemetry.OpTraceDropped {
		// A capped envelope's marker: account, don't store.
		t.dropped += int64(s.Dropped)
		return
	}
	k := keyOf(s)
	if _, dup := t.seen[k]; dup {
		return
	}
	if len(t.spans) >= r.opts.MaxSpansPerTrace {
		t.dropped++
		return
	}
	t.seen[k] = struct{}{}
	t.spans = append(t.spans, s)
	if s.Err != "" {
		t.errors++
	}
}

// RecordProv implements provenance.Recorder: the decision event joins its
// trace's provenance store. Like spans, the same event can arrive twice —
// recorded locally by the deciding agent and mirrored from the reply
// envelope it rode back on — so events are deduplicated by content (their
// JSON encoding; a decision has no timing tuple to key on). Envelope
// ProvDropped markers are accounted, not stored.
func (r *Recorder) RecordProv(traceID string, ev kqml.ProvEvent) {
	if traceID == "" {
		return
	}
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.traces[traceID]
	if !ok {
		r.evictLocked(now)
		t = &trace{id: traceID, seen: make(map[spanKey]struct{})}
		r.traces[traceID] = t
	}
	t.lastUpdate = now
	if ev.Kind == kqml.ProvDropped {
		t.provDropped += int64(ev.Dropped)
		return
	}
	key, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if t.provSeen == nil {
		t.provSeen = make(map[string]struct{})
	}
	if _, dup := t.provSeen[string(key)]; dup {
		return
	}
	if len(t.prov) >= r.opts.MaxProvPerTrace {
		t.provDropped++
		return
	}
	t.provSeen[string(key)] = struct{}{}
	t.prov = append(t.prov, ev)
}

// evictLocked drops aged-out traces, then the least recently updated ones
// until a new trace fits under MaxTraces. Called with r.mu held.
func (r *Recorder) evictLocked(now time.Time) {
	cutoff := now.Add(-r.opts.MaxTraceAge)
	for id, t := range r.traces {
		if t.lastUpdate.Before(cutoff) {
			delete(r.traces, id)
		}
	}
	for len(r.traces) >= r.opts.MaxTraces {
		var oldest *trace
		for _, t := range r.traces {
			if oldest == nil || t.lastUpdate.Before(oldest.lastUpdate) {
				oldest = t
			}
		}
		if oldest == nil {
			return
		}
		delete(r.traces, oldest.id)
	}
}

// Drops returns how many spans the ring has overwritten since creation.
func (r *Recorder) Drops() int64 { return r.drops.Load() }

// Spans returns up to limit of the most recent ring spans, oldest first
// (limit <= 0 means all).
func (r *Recorder) Spans(limit int) []telemetry.Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.head
	if r.filled {
		n = len(r.ring)
	}
	out := make([]telemetry.Span, 0, n)
	start := 0
	if r.filled {
		start = r.head
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Summary is a one-line view of an assembled trace for listings.
type Summary struct {
	ID string `json:"id"`
	// Spans is how many distinct spans the trace holds.
	Spans int `json:"spans"`
	// Agents is how many distinct agents contributed spans.
	Agents int `json:"agents"`
	// MaxHop is the deepest inter-broker forwarding depth seen.
	MaxHop int `json:"max_hop"`
	// Errors counts spans that recorded an error.
	Errors int `json:"errors,omitempty"`
	// Dropped counts spans lost to envelope caps or per-trace bounds.
	Dropped int64 `json:"dropped,omitempty"`
	// Prov counts stored decision-provenance events; ProvDropped counts
	// events lost to envelope caps or per-trace bounds.
	Prov        int   `json:"prov,omitempty"`
	ProvDropped int64 `json:"prov_dropped,omitempty"`
	// StartUnixNano is the earliest span start; DurationMicros spans from
	// it to the latest span end.
	StartUnixNano  int64 `json:"start,omitempty"`
	DurationMicros int64 `json:"us"`
}

func (t *trace) summary() Summary {
	s := Summary{ID: t.id, Spans: len(t.spans), Errors: t.errors, Dropped: t.dropped,
		Prov: len(t.prov), ProvDropped: t.provDropped}
	agents := make(map[string]struct{})
	var minStart, maxEnd int64
	for _, sp := range t.spans {
		agents[sp.Agent] = struct{}{}
		if sp.Hop > s.MaxHop {
			s.MaxHop = sp.Hop
		}
		if sp.StartUnixNano == 0 {
			continue
		}
		if minStart == 0 || sp.StartUnixNano < minStart {
			minStart = sp.StartUnixNano
		}
		if end := sp.EndUnixNano(); end > maxEnd {
			maxEnd = end
		}
	}
	s.Agents = len(agents)
	s.StartUnixNano = minStart
	if maxEnd > minStart {
		s.DurationMicros = (maxEnd - minStart) / 1000
	}
	return s
}

// Summaries returns up to limit trace summaries, most recently updated
// first (limit <= 0 means all).
func (r *Recorder) Summaries(limit int) []Summary {
	r.mu.Lock()
	ordered := make([]*trace, 0, len(r.traces))
	for _, t := range r.traces {
		ordered = append(ordered, t)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if !ordered[i].lastUpdate.Equal(ordered[j].lastUpdate) {
			return ordered[i].lastUpdate.After(ordered[j].lastUpdate)
		}
		return ordered[i].id < ordered[j].id
	})
	if limit > 0 && len(ordered) > limit {
		ordered = ordered[:limit]
	}
	out := make([]Summary, len(ordered))
	for i, t := range ordered {
		out[i] = t.summary()
	}
	r.mu.Unlock()
	return out
}

// Trace assembles and returns the tree for one trace ID.
func (r *Recorder) Trace(id string) (*Tree, bool) {
	r.mu.Lock()
	t, ok := r.traces[id]
	var spans []telemetry.Span
	var sum Summary
	if ok {
		spans = append([]telemetry.Span(nil), t.spans...)
		sum = t.summary()
	}
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	return assemble(sum, spans), true
}
