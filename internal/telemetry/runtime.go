package telemetry

import (
	"math"
	"runtime/metrics"
)

// OnCollect registers a hook that runs at the start of every exposition
// (WritePrometheus and Snapshot), so gauges that mirror external state can
// refresh lazily on scrape instead of needing a sampling goroutine.
func (r *Registry) OnCollect(hook func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, hook)
	r.mu.Unlock()
}

func (r *Registry) runHooks() {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// EnableRuntimeMetrics registers Go runtime health gauges — goroutine
// count, heap in-use bytes, and the GC pause p95 — refreshed from
// runtime/metrics on every scrape. Calling it again is a no-op.
func (r *Registry) EnableRuntimeMetrics() {
	r.mu.Lock()
	if r.runtimeOn {
		r.mu.Unlock()
		return
	}
	r.runtimeOn = true
	r.mu.Unlock()

	goroutines := r.Gauge("infosleuth_runtime_goroutines",
		"Live goroutines in the process.")
	heapInUse := r.Gauge("infosleuth_runtime_heap_inuse_bytes",
		"Bytes of heap memory occupied by live objects and not-yet-reclaimed dead objects.")
	gcPauseP95 := r.Gauge("infosleuth_runtime_gc_pause_p95_seconds",
		"95th percentile of GC stop-the-world pause latencies since process start.")

	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/pauses:seconds"},
	}
	r.OnCollect(func() {
		metrics.Read(samples)
		if v := samples[0].Value; v.Kind() == metrics.KindUint64 {
			goroutines.Set(float64(v.Uint64()))
		}
		if v := samples[1].Value; v.Kind() == metrics.KindUint64 {
			heapInUse.Set(float64(v.Uint64()))
		}
		if v := samples[2].Value; v.Kind() == metrics.KindFloat64Histogram {
			gcPauseP95.Set(histogramQuantile(v.Float64Histogram(), 0.95))
		}
	})
}

// histogramQuantile estimates a quantile from a runtime/metrics cumulative
// bucket histogram, returning the upper bound of the bucket the quantile
// falls in (the lower bound for the +Inf bucket).
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			// Counts[i] covers [Buckets[i], Buckets[i+1]).
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
