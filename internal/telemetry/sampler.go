package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file is the always-on half of tail sampling. Root operations (an
// MRQ run, a user submission, a broker search, a resource query) report
// their outcome through ObserveRoot whether or not the conversation was
// traced; an installed RootObserver (the flight recorder's slowlog, the
// SLO tracker) decides what to keep. When nothing is installed — every
// Section 5 experiment, every test that doesn't opt in — ObserveRoot is a
// single atomic load, and the per-operation p99 tracking in TailSampler
// is a mutex-guarded handful of float ops (see BenchmarkTailSampleDecision:
// sub-microsecond, zero allocations).

// RootOutcome is one completed root operation's outcome, as reported to
// RootObservers. It is passed by value so the untraced hot path allocates
// nothing.
type RootOutcome struct {
	// Op is the operation (an Op* constant: OpMRQRun, OpUserSubmit, ...).
	Op string
	// TraceID is the conversation the operation belonged to, "" when
	// untraced (the outcome still feeds thresholds and SLO windows).
	TraceID string
	// DurationMicros is the root latency.
	DurationMicros int64
	// Err marks a failed operation; Degraded marks a partial result
	// (fragments lost with no covering replica).
	Err      bool
	Degraded bool
}

// RootObserver consumes root-operation outcomes. Implementations must be
// safe for concurrent use and must not block: ObserveRoot is called on
// query hot paths.
type RootObserver interface {
	ObserveRoot(RootOutcome)
}

// observerBox wraps the interface so atomic.Pointer has one concrete type.
type observerBox struct{ o RootObserver }

var activeObserver atomic.Pointer[observerBox]

// SetRootObserver installs o as the process-wide root observer and returns
// the previous one (nil if none). Passing nil uninstalls. Like the span
// recorder, harnesses that must stay observation-free simply never
// install one.
func SetRootObserver(o RootObserver) RootObserver {
	var next *observerBox
	if o != nil {
		next = &observerBox{o: o}
	}
	prev := activeObserver.Swap(next)
	if prev == nil {
		return nil
	}
	return prev.o
}

// RootObserverActive reports whether a root observer is installed.
func RootObserverActive() bool {
	return activeObserver.Load() != nil
}

// ObserveRoot hands a root outcome to the installed observer; a no-op
// (one atomic load) when none is installed.
func ObserveRoot(o RootOutcome) {
	if box := activeObserver.Load(); box != nil {
		box.o.ObserveRoot(o)
	}
}

// MultiRootObserver fans one outcome out to several observers (the daemon
// installs the slowlog and the SLO tracker together). Nil entries are
// skipped.
type MultiRootObserver []RootObserver

// ObserveRoot implements RootObserver.
func (m MultiRootObserver) ObserveRoot(o RootOutcome) {
	for _, ob := range m {
		if ob != nil {
			ob.ObserveRoot(o)
		}
	}
}

// TailSampler keeps a rolling p99 latency estimate per operation and
// flags the observations that exceed it — the retention rule behind the
// slowlog ("keep a trace only if its root latency beat its operation's
// recent p99, or it ended partial/degraded"). Decisions on already-seen
// operations take a sync.Map hit, a mutex, and a few float ops; nothing
// allocates after an operation's first observation.
type TailSampler struct {
	ops sync.Map // op string -> *opSampler
}

type opSampler struct {
	mu  sync.Mutex
	est p99Est
	// thresholdBits mirrors est.est for lock-free Threshold() reads.
	thresholdBits atomic.Uint64
	warm          atomic.Bool
}

// NewTailSampler returns an empty sampler.
func NewTailSampler() *TailSampler {
	return &TailSampler{}
}

// Observe feeds one root latency and reports whether it should be
// tail-sampled: the operation's estimator is warm (estWarmup samples) and
// this latency exceeded the p99 estimate as of before this observation.
// The returned threshold is that prior estimate in microseconds (0 while
// cold).
func (s *TailSampler) Observe(op string, durMicros int64) (slow bool, thresholdMicros float64) {
	v, ok := s.ops.Load(op)
	if !ok {
		v, _ = s.ops.LoadOrStore(op, &opSampler{})
	}
	os := v.(*opSampler)
	os.mu.Lock()
	warm := os.est.warm()
	prior := os.est.est
	next := os.est.observe(float64(durMicros))
	os.thresholdBits.Store(math.Float64bits(next))
	if os.est.warm() {
		os.warm.Store(true)
	}
	os.mu.Unlock()
	if !warm {
		return false, 0
	}
	return float64(durMicros) > prior, prior
}

// Threshold returns the operation's current p99 estimate in microseconds;
// ok is false until the operation has warmed up.
func (s *TailSampler) Threshold(op string) (thresholdMicros float64, ok bool) {
	v, loaded := s.ops.Load(op)
	if !loaded {
		return 0, false
	}
	os := v.(*opSampler)
	if !os.warm.Load() {
		return 0, false
	}
	return math.Float64frombits(os.thresholdBits.Load()), true
}
