package telemetry

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkInstrumentedCall measures the full per-call instrumentation
// cost the transport layer pays on its hot path: one timestamp pair, a
// counter increment, a labeled-counter lookup+increment, and a histogram
// observation. The design target is < 1 µs per call, so instrumentation
// can stay always-on even under the ROADMAP's heavy-traffic regime.
//
//	go test -bench=InstrumentedCall -benchmem ./internal/telemetry
func BenchmarkInstrumentedCall(b *testing.B) {
	r := NewRegistry()
	calls := r.Counter("bench_calls_total", "x")
	byTransport := r.CounterVec("bench_calls_by_transport_total", "x", "transport")
	seconds := r.Histogram("bench_call_seconds", "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		calls.Inc()
		byTransport.With("inproc").Inc()
		seconds.Observe(time.Since(start).Seconds())
	}
}

// TestInstrumentedCallOverhead asserts the benchmark's target directly: a
// full instrumented-call sequence must average well under 1 µs. The bound
// is deliberately loose (CI machines are noisy) but still an order of
// magnitude below the cheapest real transport call.
func TestInstrumentedCallOverhead(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing test (skipped under -short and -race)")
	}
	r := NewRegistry()
	calls := r.Counter("overhead_calls_total", "x")
	byTransport := r.CounterVec("overhead_by_transport_total", "x", "transport")
	seconds := r.Histogram("overhead_seconds", "x")
	const n = 200000
	start := time.Now()
	for i := 0; i < n; i++ {
		calls.Inc()
		byTransport.With("inproc").Inc()
		seconds.Observe(1e-6)
	}
	per := time.Since(start) / n
	if per > time.Microsecond {
		t.Errorf("instrumentation overhead %v per call, want < 1µs", per)
	}
}

// BenchmarkHistogramObserveParallel measures contention on one histogram
// from many goroutines (the shape of a loaded broker's match histogram).
func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_parallel_seconds", "x")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.001)
		}
	})
}

// BenchmarkCounterParallel measures the atomic counter under contention.
func BenchmarkCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_parallel_total", "x")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkSnapshot measures the exposition-side cost of one histogram
// snapshot (sorting the bounded window).
func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_snapshot_seconds", "x")
	for i := 0; i < windowSize; i++ {
		h.Observe(float64(i % 97))
	}
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Store(h.Snapshot().Count)
	}
}
