package telemetry

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", path, nil))
	return rw
}

func TestHealthzAlwaysOK(t *testing.T) {
	h := NewRegistry().Handler()
	if rw := get(t, h, "/healthz"); rw.Code != 200 || !strings.Contains(rw.Body.String(), "ok") {
		t.Fatalf("/healthz: code %d body %q", rw.Code, rw.Body.String())
	}
}

func TestReadyzReflectsChecks(t *testing.T) {
	r := NewRegistry()
	var fail error
	h := r.Handler(
		WithReadiness(func() error { return nil }),
		WithReadiness(func() error { return fail }),
	)
	if rw := get(t, h, "/readyz"); rw.Code != 200 {
		t.Fatalf("/readyz with passing checks: code %d", rw.Code)
	}
	fail = errors.New("no connected brokers")
	rw := get(t, h, "/readyz")
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing check: code %d, want 503", rw.Code)
	}
	if !strings.Contains(rw.Body.String(), "no connected brokers") {
		t.Errorf("/readyz body %q, want the failure text", rw.Body.String())
	}
	fail = nil
	if rw := get(t, h, "/readyz"); rw.Code != 200 {
		t.Fatalf("/readyz after recovery: code %d", rw.Code)
	}
}

func TestReadyzWithoutChecksIsReady(t *testing.T) {
	if rw := get(t, NewRegistry().Handler(), "/readyz"); rw.Code != 200 {
		t.Fatalf("/readyz with no checks: code %d", rw.Code)
	}
}

func TestWithHandlerMounts(t *testing.T) {
	r := NewRegistry()
	h := r.Handler(WithHandler("/traces", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(299)
	})))
	if rw := get(t, h, "/traces"); rw.Code != 299 {
		t.Fatalf("mounted handler not reached: code %d", rw.Code)
	}
	// The standard endpoints still work alongside the mount.
	if rw := get(t, h, "/metrics"); rw.Code != 200 {
		t.Fatalf("/metrics alongside mount: code %d", rw.Code)
	}
}

func TestPprofOnlyWhenEnabled(t *testing.T) {
	r := NewRegistry()
	if rw := get(t, r.Handler(), "/debug/pprof/cmdline"); rw.Code == 200 {
		t.Fatal("pprof reachable without WithPprof")
	}
	if rw := get(t, r.Handler(WithPprof()), "/debug/pprof/cmdline"); rw.Code != 200 {
		t.Fatalf("pprof with WithPprof: code %d", rw.Code)
	}
}

func TestMetricsJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("shape_total", "x").Inc()
	r.Histogram("shape_seconds", "x").Observe(0.5)
	rw := get(t, r.Handler(), "/metrics.json")
	if rw.Code != 200 || !strings.Contains(rw.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("/metrics.json: code %d content-type %q", rw.Code, rw.Header().Get("Content-Type"))
	}
	var snap map[string]map[string]any
	if err := json.Unmarshal(rw.Body.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	// Families map label value ("" when unlabeled) to the series value.
	if v, _ := snap["shape_total"][""].(float64); v != 1 {
		t.Errorf("shape_total = %v, want 1", snap["shape_total"])
	}
	hist, ok := snap["shape_seconds"][""].(map[string]any)
	if !ok {
		t.Fatalf("snapshot missing shape_seconds histogram: %v", snap)
	}
	for _, k := range []string{"count", "p95"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("histogram snapshot missing %q: %v", k, hist)
		}
	}
}

func TestOnCollectRunsAtExposition(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("lazy_gauge", "x")
	n := 0
	r.OnCollect(func() { n++; g.Set(float64(n)) })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(sb.String(), "lazy_gauge 1") {
		t.Errorf("hook ran %d times, exposition:\n%s", n, sb.String())
	}
	r.Snapshot()
	if n != 2 {
		t.Errorf("hook ran %d times after Snapshot, want 2", n)
	}
}

func TestRuntimeMetricsAppearOnScrape(t *testing.T) {
	r := NewRegistry()
	r.EnableRuntimeMetrics()
	r.EnableRuntimeMetrics() // idempotent
	runtime.GC()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"infosleuth_runtime_goroutines",
		"infosleuth_runtime_heap_inuse_bytes",
		"infosleuth_runtime_gc_pause_p95_seconds",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	snap := r.Snapshot()
	if v, _ := snap["infosleuth_runtime_goroutines"][""].(float64); v < 1 {
		t.Errorf("goroutine gauge = %v, want >= 1", snap["infosleuth_runtime_goroutines"])
	}
	if v, _ := snap["infosleuth_runtime_heap_inuse_bytes"][""].(float64); v <= 0 {
		t.Errorf("heap gauge = %v, want > 0", snap["infosleuth_runtime_heap_inuse_bytes"])
	}
}
