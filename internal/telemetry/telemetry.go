// Package telemetry is the observability layer of the reproduction: a
// dependency-free metrics registry (atomic counters, gauges, and
// bounded-window histograms with quantile snapshots) plus the trace-ID
// generator behind KQML conversation tracing.
//
// The paper's evaluation (Section 5) is built on measuring broker routing
// quality, inter-broker hop counts and query latency; this package gives a
// running community the same visibility. Instrumented hot paths record into
// the process-wide Default registry, and every daemon can expose it over
// HTTP in Prometheus text format (see expose.go) behind a -metrics-addr
// flag.
//
// The registry depends only on the standard library so that every package
// in the tree — including internal/kqml and internal/transport at the very
// bottom of the dependency graph — can record into it without cycles.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// maxLabelValues bounds the per-family label cardinality so that an
// instrumented path keyed by a caller-controlled string (for example a
// per-address failure counter) cannot grow the registry without bound
// under heavy traffic; further label values collapse into "_other".
const maxLabelValues = 256

// Counter is a monotonically increasing counter. All methods are safe for
// concurrent use; the zero value is ready.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, registry sizes).
// All methods are safe for concurrent use; the zero value is ready.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// kind discriminates what a registered name holds, so that one name cannot
// be registered as two different metric types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one registered metric name: its help text, its label
// dimension (empty for unlabeled metrics), and the per-label-value
// collectors. Unlabeled metrics live under the empty label value.
type family struct {
	name  string
	help  string
	kind  kind
	label string

	mu     sync.Mutex
	order  []string
	series map[string]any // label value -> *Counter | *Gauge | *Histogram
}

// get returns the collector for one label value, creating it on first use
// and collapsing excess cardinality into "_other".
func (f *family) get(labelValue string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[labelValue]; ok {
		return c
	}
	if len(f.series) >= maxLabelValues {
		labelValue = "_other"
		if c, ok := f.series[labelValue]; ok {
			return c
		}
	}
	c := make()
	f.series[labelValue] = c
	f.order = append(f.order, labelValue)
	return c
}

// Registry holds named metrics. Registration is idempotent: asking for the
// same name again returns the same collector, so package-level metric
// variables in different files can share a family. Registering one name as
// two different types or with two different label dimensions panics — that
// is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family

	// hooks run at the start of every exposition (see OnCollect);
	// runtimeOn makes EnableRuntimeMetrics idempotent.
	hooks     []func()
	runtimeOn bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry the instrumented hot paths record
// into; daemons expose it via Serve.
var Default = NewRegistry()

func (r *Registry) family(name, help string, k kind, label string) *family {
	if name == "" {
		panic("telemetry: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k {
			panic(fmt.Sprintf("telemetry: %s already registered as a %s, not a %s", name, f.kind, k))
		}
		if f.label != label {
			panic(fmt.Sprintf("telemetry: %s already registered with label %q, not %q", name, f.label, label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, label: label, series: make(map[string]any)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, "")
	return f.get("", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, "")
	return f.get("", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or retrieves) an unlabeled bounded-window histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.family(name, help, kindHistogram, "")
	return f.get("", func() any { return newHistogram() }).(*Histogram)
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// CounterVec registers (or retrieves) a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, label)}
}

// With returns the counter for one label value.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.get(labelValue, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// GaugeVec registers (or retrieves) a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, kindGauge, label)}
}

// With returns the gauge for one label value.
func (v *GaugeVec) With(labelValue string) *Gauge {
	return v.f.get(labelValue, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// HistogramVec registers (or retrieves) a labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, label)}
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.get(labelValue, func() any { return newHistogram() }).(*Histogram)
}

// snapshotFamilies returns a stable-ordered copy of the registry contents
// for the exposition formats.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	return fams
}

// seriesView is one (label value, collector) pair captured under the
// family lock.
type seriesView struct {
	labelValue string
	collector  any
}

func (f *family) snapshotSeries() []seriesView {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]seriesView, 0, len(f.order))
	ordered := append([]string(nil), f.order...)
	sort.Strings(ordered)
	for _, lv := range ordered {
		out = append(out, seriesView{labelValue: lv, collector: f.series[lv]})
	}
	return out
}

// NewTraceID returns a fresh 16-hex-digit conversation trace ID — the
// handle that follows one query across user agent, brokers and resource
// agents (the KQML envelope's trace-id field).
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively impossible; fall back to a
		// process-local sequence so tracing degrades rather than panics.
		return fmt.Sprintf("trace-%016x", traceFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var traceFallback atomic.Uint64
