package logging

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
	}{
		{"", slog.LevelInfo},
		{"info", slog.LevelInfo},
		{"INFO", slog.LevelInfo},
		{"debug", slog.LevelDebug},
		{"warn", slog.LevelWarn},
		{"warning", slog.LevelWarn},
		{"error", slog.LevelError},
		{"  error  ", slog.LevelError},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel(verbose) should fail")
	}
}

func TestNewTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l, err := New("brokerd", Options{Format: "text", Level: "info"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("agent advertised", "agent", "R1", Trace("abc123"))
	out := buf.String()
	for _, want := range []string{"component=brokerd", "agent advertised", "agent=R1", "trace_id=abc123"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Below-threshold records are dropped.
	buf.Reset()
	l.Debug("noise")
	if buf.Len() != 0 {
		t.Errorf("debug record emitted at info level: %q", buf.String())
	}
}

func TestNewJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l, err := New("resourced", Options{Format: "json", Level: "debug"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("query executed", Trace("def456"))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON record: %v in %q", err, buf.String())
	}
	if rec["component"] != "resourced" || rec["msg"] != "query executed" || rec["trace_id"] != "def456" {
		t.Errorf("record = %v", rec)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New("x", Options{Format: "xml"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown format should fail")
	}
	if _, err := New("x", Options{Level: "loud"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown level should fail")
	}
}

func TestAddFlags(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.AddFlags(fs)
	if err := fs.Parse([]string{"-log-format", "json", "-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	if o.Format != "json" || o.Level != "debug" {
		t.Errorf("parsed options = %+v", o)
	}
	// Defaults without flags.
	var d Options
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	d.AddFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if d.Format != "text" || d.Level != "info" {
		t.Errorf("default options = %+v", d)
	}
}
