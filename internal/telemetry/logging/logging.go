// Package logging is the shared structured-logging layer for the cmd/
// daemons: one flag set (-log-format, -log-level), one slog handler
// construction, and a trace-ID attribute helper so log records correlate
// with the conversation traces in the flight recorder.
//
// Setup installs the built logger as the slog default, which also routes
// the standard library's log.Printf output through it — so a dependency
// that still logs the old way ends up in the same stream with the same
// format.
package logging

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Options are the shared logging knobs, normally bound to flags with
// AddFlags before flag.Parse.
type Options struct {
	// Format is "text" or "json".
	Format string
	// Level is "debug", "info", "warn" or "error".
	Level string
}

// AddFlags binds -log-format and -log-level on the flag set (the command
// line by default when fs is flag.CommandLine).
func (o *Options) AddFlags(fs *flag.FlagSet) {
	if o.Format == "" {
		o.Format = "text"
	}
	if o.Level == "" {
		o.Level = "info"
	}
	fs.StringVar(&o.Format, "log-format", o.Format, "log output format: text or json")
	fs.StringVar(&o.Level, "log-level", o.Level, "minimum log level: debug, info, warn or error")
}

// ParseLevel maps a level name to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("logging: unknown level %q (want debug, info, warn or error)", s)
	}
}

// New builds a logger writing to w with the options' format and level,
// tagged with the component name (the daemon: "brokerd", "resourced", ...).
func New(component string, o Options, w io.Writer) (*slog.Logger, error) {
	level, err := ParseLevel(o.Level)
	if err != nil {
		return nil, err
	}
	hopts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(o.Format)) {
	case "", "text":
		h = slog.NewTextHandler(w, hopts)
	case "json":
		h = slog.NewJSONHandler(w, hopts)
	default:
		return nil, fmt.Errorf("logging: unknown format %q (want text or json)", o.Format)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l, nil
}

// Setup builds the component's logger on stderr and installs it as the
// slog (and, via the slog bridge, the standard log) default. Invalid
// options are a startup configuration error: the daemon exits.
func Setup(component string, o Options) *slog.Logger {
	l, err := New(component, o, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog.SetDefault(l)
	return l
}

// Trace returns the attribute correlating a record with a conversation
// trace, so `grep trace_id=...` (or a JSON field match) joins daemon logs
// with the flight recorder's assembled tree.
func Trace(id string) slog.Attr {
	return slog.String("trace_id", id)
}

// Fatal logs at error level and exits — the structured replacement for
// log.Fatalf in daemon startup paths.
func Fatal(l *slog.Logger, msg string, args ...any) {
	l.Error(msg, args...)
	os.Exit(1)
}
