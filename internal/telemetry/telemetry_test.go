package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "x")
	b := r.Counter("same_total", "x")
	if a != b {
		t.Error("re-registering a counter should return the same collector")
	}
	h1 := r.HistogramVec("same_hist", "x", "op").With("a")
	h2 := r.HistogramVec("same_hist", "x", "op").With("a")
	if h1 != h2 {
		t.Error("re-registering a histogram vec series should return the same collector")
	}
}

func TestRegistrationKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds should panic")
		}
	}()
	r.Gauge("clash_total", "x")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Errorf("sum = %v, want 5050", s.Sum)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", s.Min, s.Max)
	}
	if s.P50 != 50 {
		t.Errorf("p50 = %v, want 50", s.P50)
	}
	if s.P95 != 95 {
		t.Errorf("p95 = %v, want 95", s.P95)
	}
	if s.P99 != 99 {
		t.Errorf("p99 = %v, want 99", s.P99)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("mean = %v, want 50.5", got)
	}
}

func TestHistogramWindowBounded(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_window_seconds", "latency")
	// Fill the window with large values, then overwrite with small ones:
	// quantiles must reflect only the recent window, while count/sum/max
	// stay lifetime-exact.
	for i := 0; i < windowSize; i++ {
		h.Observe(1000)
	}
	for i := 0; i < windowSize; i++ {
		h.Observe(1)
	}
	s := h.Snapshot()
	if s.Count != 2*windowSize {
		t.Errorf("count = %d, want %d", s.Count, 2*windowSize)
	}
	if s.P99 != 1 {
		t.Errorf("p99 = %v, want 1 (old samples must age out of the window)", s.P99)
	}
	if s.Max != 1000 {
		t.Errorf("max = %v, want lifetime 1000", s.Max)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("test_empty_seconds", "x").Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot = %+v, want zeros", s)
	}
}

// TestConcurrentUpdates exercises every collector type from many
// goroutines; run with -race (satellite requirement: concurrent
// counter/histogram updates pass `go test -race`).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "x")
	g := r.Gauge("conc_gauge", "x")
	h := r.Histogram("conc_seconds", "x")
	vec := r.CounterVec("conc_vec_total", "x", "worker")
	hvec := r.HistogramVec("conc_vec_seconds", "x", "worker")

	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i))
				vec.With(label).Inc()
				hvec.With(label).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var vecTotal int64
	for i := 0; i < 4; i++ {
		vecTotal += vec.With(fmt.Sprintf("w%d", i)).Value()
	}
	if vecTotal != workers*perWorker {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*perWorker)
	}
}

func TestLabelCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("cardinality_total", "x", "addr")
	for i := 0; i < maxLabelValues+50; i++ {
		vec.With(fmt.Sprintf("addr-%d", i)).Inc()
	}
	// Everything past the cap collapses into one overflow series.
	if got := vec.With("_other").Value(); got < 49 {
		t.Errorf("overflow series = %d, want >= 49", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("expo_ops_total", "operations performed").Add(7)
	r.GaugeVec("expo_size", "repository size", "broker").With("Broker1").Set(12)
	h := r.Histogram("expo_seconds", "call latency")
	for i := 0; i < 10; i++ {
		h.Observe(0.25)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP expo_ops_total operations performed",
		"# TYPE expo_ops_total counter",
		"expo_ops_total 7",
		"# TYPE expo_size gauge",
		`expo_size{broker="Broker1"} 12`,
		"# TYPE expo_seconds summary",
		`expo_seconds{quantile="0.5"} 0.25`,
		`expo_seconds{quantile="0.99"} 0.25`,
		"expo_seconds_sum 2.5",
		"expo_seconds_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "x", "addr").With(`tcp://a"b\c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{addr="tcp://a\"b\\c"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_ops_total", "x").Add(3)
	r.Histogram("http_seconds", "x").Observe(0.5)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "http_ops_total 3") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var snap map[string]map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("bad /metrics.json: %v", err)
	}
	if _, ok := snap["http_seconds"]; !ok {
		t.Errorf("/metrics.json missing histogram: %v", snap)
	}
	if out := get("/healthz"); !strings.Contains(out, "ok") {
		t.Errorf("/healthz = %q", out)
	}
}

func TestNewTraceID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}
