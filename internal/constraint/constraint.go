// Package constraint implements the data-constraint language that InfoSleuth
// agents use in advertisements and broker queries.
//
// A resource agent advertises constraints on the information it holds, e.g.
//
//	patient.age between 43 and 75
//
// and a broker query carries constraints on the information it needs, e.g.
//
//	(patient.age between 25 and 65) AND (patient.diagnosis_code = '40W')
//
// The broker recommends an agent when the advertised constraints *overlap*
// the requested ones — when some data item could satisfy both (Section 2.4
// of the paper: the reasoning engine matches the agent that advertised
// patients between 43 and 75 against a request for patients between 25 and
// 65). The package provides the constraint value model, atomic constraints
// (ranges, comparisons, equality, membership), conjunctive constraint sets,
// overlap and subsumption reasoning, and a parser for the textual form.
package constraint

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind int

// Value kinds.
const (
	KindNumber Kind = iota
	KindString
)

// Value is a typed constant appearing in a constraint: a number or a string.
type Value struct {
	kind Kind
	num  float64
	str  string
}

// Num returns a numeric Value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Number returns the numeric content; it is only meaningful for KindNumber.
func (v Value) Number() float64 { return v.num }

// Text returns the string content; it is only meaningful for KindString.
func (v Value) Text() string { return v.str }

// Equal reports whether two values have the same kind and content.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	if v.kind == KindNumber {
		return v.num == o.num
	}
	return v.str == o.str
}

// Compare orders two values of the same kind: -1, 0, or +1.
// Values of different kinds compare by kind (numbers before strings) so that
// sorting is total; cross-kind comparison never arises from the parser.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNumber:
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.str, o.str)
	}
}

// String renders the value in constraint syntax.
func (v Value) String() string {
	if v.kind == KindNumber {
		if v.num == math.Trunc(v.num) && math.Abs(v.num) < 1e15 {
			return fmt.Sprintf("%d", int64(v.num))
		}
		return fmt.Sprintf("%g", v.num)
	}
	return "'" + v.str + "'"
}

// Atom is a single constraint on one field. Atoms on the same field combine
// by intersection inside a Set; atoms on distinct fields are independent
// conjuncts.
type Atom struct {
	// Field names the constrained slot, usually "class.slot"
	// (e.g. "patient.age").
	Field string
	// Interval is the admitted region for numeric comparisons and ranges.
	// For string equality/membership constraints, Allowed holds the
	// admitted values instead and Interval is unused.
	Interval Interval
	// Allowed, when non-nil, lists the admitted discrete values
	// (equality is a one-element set, IN a larger one).
	Allowed []Value
}

// Interval is a possibly-unbounded numeric interval.
type Interval struct {
	HasLo, HasHi   bool
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Unbounded is the interval admitting every number.
var Unbounded = Interval{}

// NewRange returns the closed interval [lo, hi].
func NewRange(lo, hi float64) Interval {
	return Interval{HasLo: true, Lo: lo, HasHi: true, Hi: hi}
}

// AtLeast returns the interval [lo, +inf).
func AtLeast(lo float64) Interval { return Interval{HasLo: true, Lo: lo} }

// AtMost returns the interval (-inf, hi].
func AtMost(hi float64) Interval { return Interval{HasHi: true, Hi: hi} }

// GreaterThan returns the interval (lo, +inf).
func GreaterThan(lo float64) Interval { return Interval{HasLo: true, Lo: lo, LoOpen: true} }

// LessThan returns the interval (-inf, hi).
func LessThan(hi float64) Interval { return Interval{HasHi: true, Hi: hi, HiOpen: true} }

// Exactly returns the degenerate interval [v, v].
func Exactly(v float64) Interval { return NewRange(v, v) }

// Empty reports whether the interval admits no number.
func (iv Interval) Empty() bool {
	if !iv.HasLo || !iv.HasHi {
		return false
	}
	if iv.Lo > iv.Hi {
		return true
	}
	return iv.Lo == iv.Hi && (iv.LoOpen || iv.HiOpen)
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool {
	if iv.HasLo {
		if x < iv.Lo || (iv.LoOpen && x == iv.Lo) {
			return false
		}
	}
	if iv.HasHi {
		if x > iv.Hi || (iv.HiOpen && x == iv.Hi) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	out := iv
	if o.HasLo && (!out.HasLo || o.Lo > out.Lo || (o.Lo == out.Lo && o.LoOpen)) {
		out.HasLo, out.Lo, out.LoOpen = true, o.Lo, o.LoOpen
		if o.Lo == iv.Lo && iv.HasLo {
			out.LoOpen = iv.LoOpen || o.LoOpen
		}
	}
	if o.HasHi && (!out.HasHi || o.Hi < out.Hi || (o.Hi == out.Hi && o.HiOpen)) {
		out.HasHi, out.Hi, out.HiOpen = true, o.Hi, o.HiOpen
		if o.Hi == iv.Hi && iv.HasHi {
			out.HiOpen = iv.HiOpen || o.HiOpen
		}
	}
	return out
}

// Overlaps reports whether the two intervals share at least one number.
func (iv Interval) Overlaps(o Interval) bool { return !iv.Intersect(o).Empty() }

// Covers reports whether iv is a superset of o (every number admitted by o
// is admitted by iv). An empty o is covered by anything.
func (iv Interval) Covers(o Interval) bool {
	if o.Empty() {
		return true
	}
	if iv.Empty() {
		return false
	}
	if iv.HasLo {
		if !o.HasLo {
			return false
		}
		if o.Lo < iv.Lo {
			return false
		}
		if o.Lo == iv.Lo && iv.LoOpen && !o.LoOpen {
			return false
		}
	}
	if iv.HasHi {
		if !o.HasHi {
			return false
		}
		if o.Hi > iv.Hi {
			return false
		}
		if o.Hi == iv.Hi && iv.HiOpen && !o.HiOpen {
			return false
		}
	}
	return true
}

// String renders the interval in constraint syntax fragments.
func (iv Interval) String() string {
	switch {
	case !iv.HasLo && !iv.HasHi:
		return "any"
	case iv.HasLo && iv.HasHi && iv.Lo == iv.Hi && !iv.LoOpen && !iv.HiOpen:
		return fmt.Sprintf("= %s", Num(iv.Lo))
	case iv.HasLo && iv.HasHi:
		if iv.LoOpen || iv.HiOpen {
			lo, hi := "[", "]"
			if iv.LoOpen {
				lo = "("
			}
			if iv.HiOpen {
				hi = ")"
			}
			return fmt.Sprintf("in %s%s, %s%s", lo, Num(iv.Lo), Num(iv.Hi), hi)
		}
		return fmt.Sprintf("between %s and %s", Num(iv.Lo), Num(iv.Hi))
	case iv.HasLo:
		op := ">="
		if iv.LoOpen {
			op = ">"
		}
		return fmt.Sprintf("%s %s", op, Num(iv.Lo))
	default:
		op := "<="
		if iv.HiOpen {
			op = "<"
		}
		return fmt.Sprintf("%s %s", op, Num(iv.Hi))
	}
}

// discrete reports whether the atom constrains by value set rather than
// interval.
func (a Atom) discrete() bool { return a.Allowed != nil }

// Empty reports whether the atom admits no value at all.
func (a Atom) Empty() bool {
	if a.discrete() {
		return len(a.Allowed) == 0
	}
	return a.Interval.Empty()
}

// Matches reports whether a concrete value satisfies the atom.
func (a Atom) Matches(v Value) bool {
	if a.discrete() {
		for _, w := range a.Allowed {
			if w.Equal(v) {
				return true
			}
		}
		return false
	}
	if v.Kind() != KindNumber {
		return false
	}
	return a.Interval.Contains(v.Number())
}

// Overlaps reports whether two atoms on the same field admit a common value.
func (a Atom) Overlaps(b Atom) bool {
	switch {
	case a.discrete() && b.discrete():
		for _, v := range a.Allowed {
			for _, w := range b.Allowed {
				if v.Equal(w) {
					return true
				}
			}
		}
		return false
	case a.discrete():
		for _, v := range a.Allowed {
			if b.Matches(v) {
				return true
			}
		}
		return false
	case b.discrete():
		return b.Overlaps(a)
	default:
		return a.Interval.Overlaps(b.Interval)
	}
}

// Covers reports whether atom a admits every value that atom b admits.
func (a Atom) Covers(b Atom) bool {
	switch {
	case b.discrete():
		for _, v := range b.Allowed {
			if !a.Matches(v) {
				return false
			}
		}
		return true
	case a.discrete():
		// An interval (with uncountably many points) can only be covered
		// by a discrete set if the interval is degenerate.
		iv := b.Interval
		if iv.Empty() {
			return true
		}
		if iv.HasLo && iv.HasHi && iv.Lo == iv.Hi && !iv.LoOpen && !iv.HiOpen {
			return a.Matches(Num(iv.Lo))
		}
		return false
	default:
		return a.Interval.Covers(b.Interval)
	}
}

// Intersect returns the atom admitting exactly the values admitted by both.
// The atoms must constrain the same field.
func (a Atom) Intersect(b Atom) Atom {
	if a.Field != b.Field {
		panic(fmt.Sprintf("constraint: intersecting atoms on different fields %q and %q", a.Field, b.Field))
	}
	switch {
	case a.discrete() && b.discrete():
		var out []Value
		for _, v := range a.Allowed {
			for _, w := range b.Allowed {
				if v.Equal(w) {
					out = append(out, v)
					break
				}
			}
		}
		if out == nil {
			out = []Value{}
		}
		return Atom{Field: a.Field, Allowed: out}
	case a.discrete():
		var out []Value
		for _, v := range a.Allowed {
			if b.Matches(v) {
				out = append(out, v)
			}
		}
		if out == nil {
			out = []Value{}
		}
		return Atom{Field: a.Field, Allowed: out}
	case b.discrete():
		return b.Intersect(a)
	default:
		return Atom{Field: a.Field, Interval: a.Interval.Intersect(b.Interval)}
	}
}

// String renders the atom in constraint syntax.
func (a Atom) String() string {
	if a.discrete() {
		if len(a.Allowed) == 1 {
			return fmt.Sprintf("%s = %s", a.Field, a.Allowed[0])
		}
		parts := make([]string, len(a.Allowed))
		for i, v := range a.Allowed {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s in (%s)", a.Field, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s", a.Field, a.Interval)
}

// Set is a conjunction of atoms, at most one per field (atoms added on the
// same field are intersected). The zero value is the empty conjunction,
// which admits everything.
type Set struct {
	atoms map[string]Atom
}

// NewSet returns a Set holding the given atoms.
func NewSet(atoms ...Atom) *Set {
	s := &Set{}
	for _, a := range atoms {
		s.Add(a)
	}
	return s
}

// Add conjoins an atom into the set, intersecting with any existing atom on
// the same field.
func (s *Set) Add(a Atom) {
	if s.atoms == nil {
		s.atoms = make(map[string]Atom)
	}
	if prev, ok := s.atoms[a.Field]; ok {
		a = prev.Intersect(a)
	}
	s.atoms[a.Field] = a
}

// Len returns the number of constrained fields.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.atoms)
}

// Atom returns the constraint on a field, if any.
func (s *Set) Atom(field string) (Atom, bool) {
	if s == nil {
		return Atom{}, false
	}
	a, ok := s.atoms[field]
	return a, ok
}

// Fields returns the constrained field names in sorted order.
func (s *Set) Fields() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.atoms))
	for f := range s.atoms {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Atoms returns the atoms in field order.
func (s *Set) Atoms() []Atom {
	fields := s.Fields()
	out := make([]Atom, len(fields))
	for i, f := range fields {
		out[i] = s.atoms[f]
	}
	return out
}

// Unsatisfiable reports whether some atom admits no value (the conjunction
// is contradictory).
func (s *Set) Unsatisfiable() bool {
	if s == nil {
		return false
	}
	for _, a := range s.atoms {
		if a.Empty() {
			return true
		}
	}
	return false
}

// Overlaps reports whether the two conjunctions could be satisfied by a
// common data item: for every field constrained by both, the atoms must
// overlap; fields constrained by only one side are unconstrained on the
// other and never rule a match out. This is the broker's admission test —
// an advertisement for patients aged 43-75 overlaps a request for patients
// aged 25-65.
func (s *Set) Overlaps(o *Set) bool {
	if s.Unsatisfiable() || o.Unsatisfiable() {
		return false
	}
	if s == nil || o == nil {
		return true
	}
	for f, a := range s.atoms {
		if b, ok := o.atoms[f]; ok && !a.Overlaps(b) {
			return false
		}
	}
	return true
}

// Covers reports whether every data item admitted by o is admitted by s
// (s subsumes o). s covers o when every field s constrains is constrained
// at least as tightly in o.
func (s *Set) Covers(o *Set) bool {
	if o.Unsatisfiable() {
		return true
	}
	if s == nil || s.Len() == 0 {
		return true
	}
	for f, a := range s.atoms {
		b, ok := o.atom(f)
		if !ok {
			return false
		}
		if !a.Covers(b) {
			return false
		}
	}
	return true
}

func (s *Set) atom(field string) (Atom, bool) {
	if s == nil {
		return Atom{}, false
	}
	a, ok := s.atoms[field]
	return a, ok
}

// Matches reports whether a concrete record (field → value) satisfies every
// atom in the conjunction. Fields absent from the record fail their atoms.
func (s *Set) Matches(record map[string]Value) bool {
	if s == nil {
		return true
	}
	for f, a := range s.atoms {
		v, ok := record[f]
		if !ok || !a.Matches(v) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{}
	if s != nil {
		for _, a := range s.atoms {
			cp := a
			if a.Allowed != nil {
				cp.Allowed = append([]Value(nil), a.Allowed...)
			}
			out.Add(cp)
		}
	}
	return out
}

// String renders the conjunction in the paper's parenthesized AND syntax.
func (s *Set) String() string {
	if s.Len() == 0 {
		return "(true)"
	}
	atoms := s.Atoms()
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = "(" + a.String() + ")"
	}
	return strings.Join(parts, " AND ")
}
