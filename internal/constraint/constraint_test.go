package constraint

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntervalContains(t *testing.T) {
	tests := []struct {
		name string
		iv   Interval
		x    float64
		want bool
	}{
		{"closed inside", NewRange(43, 75), 50, true},
		{"closed at lo", NewRange(43, 75), 43, true},
		{"closed at hi", NewRange(43, 75), 75, true},
		{"closed below", NewRange(43, 75), 42.999, false},
		{"closed above", NewRange(43, 75), 75.001, false},
		{"at least", AtLeast(10), 10, true},
		{"at least below", AtLeast(10), 9, false},
		{"at most", AtMost(10), 10, true},
		{"at most above", AtMost(10), 11, false},
		{"greater than boundary", GreaterThan(10), 10, false},
		{"greater than inside", GreaterThan(10), 10.1, true},
		{"less than boundary", LessThan(10), 10, false},
		{"unbounded", Unbounded, -1e18, true},
		{"exactly hit", Exactly(5), 5, true},
		{"exactly miss", Exactly(5), 5.0001, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.iv.Contains(tt.x); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestIntervalOverlaps(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"paper example: ad 43-75 vs query 25-65", NewRange(43, 75), NewRange(25, 65), true},
		{"disjoint", NewRange(0, 10), NewRange(11, 20), false},
		{"touching closed", NewRange(0, 10), NewRange(10, 20), true},
		{"touching open", LessThan(10), AtLeast(10), false},
		{"touching open/open", LessThan(10), GreaterThan(10), false},
		{"nested", NewRange(0, 100), NewRange(40, 60), true},
		{"unbounded vs anything", Unbounded, NewRange(-5, -1), true},
		{"half lines meeting", AtLeast(0), AtMost(0), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Errorf("Overlaps = %v, want %v", got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Errorf("Overlaps (reversed) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntervalCovers(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"superset", NewRange(0, 100), NewRange(40, 60), true},
		{"equal", NewRange(0, 100), NewRange(0, 100), true},
		{"proper subset does not cover", NewRange(40, 60), NewRange(0, 100), false},
		{"open lo cannot cover closed lo at same point", GreaterThan(0), AtLeast(0), false},
		{"closed covers open at same point", AtLeast(0), GreaterThan(0), true},
		{"unbounded covers all", Unbounded, NewRange(-1e9, 1e9), true},
		{"bounded cannot cover unbounded", NewRange(-1e9, 1e9), Unbounded, false},
		{"anything covers empty", Exactly(1), Interval{HasLo: true, Lo: 2, HasHi: true, Hi: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Covers(tt.b); got != tt.want {
				t.Errorf("Covers = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntervalIntersectEmptiness(t *testing.T) {
	a := NewRange(0, 10)
	b := NewRange(20, 30)
	if got := a.Intersect(b); !got.Empty() {
		t.Errorf("disjoint intersect not empty: %v", got)
	}
	c := a.Intersect(NewRange(5, 30))
	if c.Lo != 5 || c.Hi != 10 {
		t.Errorf("intersect = %v, want [5,10]", c)
	}
}

// Property: Intersect is the greatest lower bound — the intersection is
// covered by both operands and contains any point both contain.
func TestIntervalIntersectProperty(t *testing.T) {
	type ivSpec struct {
		HasLo, HasHi   bool
		Lo, Hi         int8
		LoOpen, HiOpen bool
	}
	mk := func(s ivSpec) Interval {
		return Interval{HasLo: s.HasLo, HasHi: s.HasHi, Lo: float64(s.Lo), Hi: float64(s.Hi), LoOpen: s.LoOpen, HiOpen: s.HiOpen}
	}
	f := func(sa, sb ivSpec, probe int8) bool {
		a, b := mk(sa), mk(sb)
		inter := a.Intersect(b)
		if !a.Covers(inter) || !b.Covers(inter) {
			return false
		}
		x := float64(probe)
		inBoth := a.Contains(x) && b.Contains(x)
		return inBoth == inter.Contains(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Overlaps is symmetric and consistent with Intersect emptiness.
func TestIntervalOverlapSymmetry(t *testing.T) {
	f := func(alo, ahi, blo, bhi int8) bool {
		a := NewRange(float64(alo), float64(ahi))
		b := NewRange(float64(blo), float64(bhi))
		return a.Overlaps(b) == b.Overlaps(a) &&
			a.Overlaps(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAtomDiscrete(t *testing.T) {
	a := Atom{Field: "patient.diagnosis_code", Allowed: []Value{Str("40W")}}
	if !a.Matches(Str("40W")) {
		t.Error("equality atom should match its value")
	}
	if a.Matches(Str("41W")) {
		t.Error("equality atom should not match other values")
	}
	if a.Matches(Num(40)) {
		t.Error("string atom should not match numbers")
	}
	b := Atom{Field: "patient.diagnosis_code", Allowed: []Value{Str("40W"), Str("41W")}}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping discrete sets should overlap")
	}
	if !b.Covers(a) {
		t.Error("superset should cover subset")
	}
	if a.Covers(b) {
		t.Error("subset should not cover superset")
	}
}

func TestAtomMixedDiscreteInterval(t *testing.T) {
	iv := Atom{Field: "age", Interval: NewRange(0, 100)}
	in := Atom{Field: "age", Allowed: []Value{Num(30), Num(150)}}
	if !iv.Overlaps(in) {
		t.Error("interval should overlap discrete set containing an in-range value")
	}
	if iv.Covers(in) {
		t.Error("interval should not cover set with out-of-range 150")
	}
	onlyIn := Atom{Field: "age", Allowed: []Value{Num(30), Num(60)}}
	if !iv.Covers(onlyIn) {
		t.Error("interval should cover in-range discrete set")
	}
	point := Atom{Field: "age", Interval: Exactly(30)}
	if !onlyIn.Covers(point) {
		t.Error("discrete set should cover degenerate interval at member")
	}
	if onlyIn.Covers(iv) {
		t.Error("discrete set cannot cover a non-degenerate interval")
	}
}

func TestAtomIntersect(t *testing.T) {
	a := Atom{Field: "age", Interval: NewRange(25, 65)}
	b := Atom{Field: "age", Interval: NewRange(43, 75)}
	c := a.Intersect(b)
	if c.Interval.Lo != 43 || c.Interval.Hi != 65 {
		t.Errorf("intersect = %v, want [43,65]", c.Interval)
	}
	d1 := Atom{Field: "code", Allowed: []Value{Str("a"), Str("b")}}
	d2 := Atom{Field: "code", Allowed: []Value{Str("b"), Str("c")}}
	d := d1.Intersect(d2)
	if len(d.Allowed) != 1 || !d.Allowed[0].Equal(Str("b")) {
		t.Errorf("discrete intersect = %v, want [b]", d.Allowed)
	}
	dm := d1.Intersect(Atom{Field: "code", Allowed: []Value{Str("z")}})
	if !dm.Empty() {
		t.Errorf("empty discrete intersect not empty: %v", dm.Allowed)
	}
}

func TestAtomIntersectFieldMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("intersecting atoms on different fields should panic")
		}
	}()
	a := Atom{Field: "x", Interval: Unbounded}
	b := Atom{Field: "y", Interval: Unbounded}
	a.Intersect(b)
}

func TestSetOverlapsPaperExample(t *testing.T) {
	// Section 2.4: ResourceAgent5 advertises patients between 43 and 75;
	// QueryAgent2 asks for patients 25-65 with diagnosis code 40W.
	ad := MustParse("patient.age between 43 and 75")
	query := MustParse("(patient.age between 25 and 65) AND (patient.diagnosis_code = '40W')")
	if !ad.Overlaps(query) {
		t.Error("paper's example must match: ad [43,75] overlaps query [25,65]")
	}
	if !query.Overlaps(ad) {
		t.Error("overlap must be symmetric")
	}
	// A resource restricted to patients over 80 should not match.
	old := MustParse("patient.age >= 80")
	if old.Overlaps(query) {
		t.Error("ad for patients over 80 must not overlap query for 25-65")
	}
}

func TestSetAddIntersects(t *testing.T) {
	s := NewSet()
	s.Add(Atom{Field: "age", Interval: NewRange(0, 50)})
	s.Add(Atom{Field: "age", Interval: NewRange(40, 100)})
	a, ok := s.Atom("age")
	if !ok {
		t.Fatal("age atom missing")
	}
	if a.Interval.Lo != 40 || a.Interval.Hi != 50 {
		t.Errorf("conjoined atom = %v, want [40,50]", a.Interval)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestSetUnsatisfiable(t *testing.T) {
	s := NewSet(
		Atom{Field: "age", Interval: NewRange(0, 10)},
		Atom{Field: "age", Interval: NewRange(20, 30)},
	)
	if !s.Unsatisfiable() {
		t.Error("contradictory conjunction should be unsatisfiable")
	}
	if s.Overlaps(NewSet()) {
		t.Error("unsatisfiable set overlaps nothing")
	}
	if !NewSet().Covers(s) {
		t.Error("anything covers an unsatisfiable set")
	}
}

func TestSetCovers(t *testing.T) {
	wide := MustParse("patient.age between 0 and 120")
	narrow := MustParse("patient.age between 43 and 75 AND patient.diagnosis_code = '40W'")
	if !wide.Covers(narrow) {
		t.Error("wide range should cover narrow range with extra constraints")
	}
	if narrow.Covers(wide) {
		t.Error("narrow set should not cover wide")
	}
	empty := NewSet()
	if !empty.Covers(wide) {
		t.Error("empty conjunction covers everything")
	}
	if wide.Covers(empty) {
		t.Error("constrained set cannot cover unconstrained set")
	}
}

func TestSetMatchesRecord(t *testing.T) {
	q := MustParse("(patient.age between 25 and 65) AND (patient.diagnosis_code = '40W')")
	hit := map[string]Value{
		"patient.age":            Num(44),
		"patient.diagnosis_code": Str("40W"),
	}
	miss := map[string]Value{
		"patient.age":            Num(80),
		"patient.diagnosis_code": Str("40W"),
	}
	if !q.Matches(hit) {
		t.Error("record inside both constraints should match")
	}
	if q.Matches(miss) {
		t.Error("record outside age range should not match")
	}
	if q.Matches(map[string]Value{"patient.age": Num(44)}) {
		t.Error("record missing a constrained field should not match")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	a := MustParse("x between 0 and 10")
	b := a.Clone()
	b.Add(Atom{Field: "y", Interval: Exactly(3)})
	if a.Len() != 1 {
		t.Errorf("clone mutation leaked into original: Len = %d", a.Len())
	}
	if b.Len() != 2 {
		t.Errorf("clone Len = %d, want 2", b.Len())
	}
}

func TestParseVariants(t *testing.T) {
	tests := []struct {
		in      string
		fields  []string
		wantErr bool
	}{
		{"patient.age between 43 and 75", []string{"patient.age"}, false},
		{"patient age between 43 and 75", []string{"patient.age"}, false},
		{"(patient.age between 25 and 65) AND (patient.diagnosis_code = '40W')", []string{"patient.age", "patient.diagnosis_code"}, false},
		{"patient.diagnosis code = '40W'", []string{"patient.diagnosis_code"}, false},
		{"x >= 5 and x <= 9", []string{"x"}, false},
		{"region in ('Dallas', 'Houston')", []string{"region"}, false},
		{"code = 40W", []string{"code"}, false},
		{"true", nil, false},
		{"", nil, true},
		{"x between 1", nil, true},
		{"x !! 3", nil, true},
		{"x > 'abc'", nil, true},
		{"(x = 1", nil, true},
		{"x = 1 extra", nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			s, err := Parse(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Parse(%q) succeeded, want error", tt.in)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.in, err)
			}
			got := s.Fields()
			if len(got) != len(tt.fields) {
				t.Fatalf("fields = %v, want %v", got, tt.fields)
			}
			for i := range got {
				if got[i] != tt.fields[i] {
					t.Errorf("fields = %v, want %v", got, tt.fields)
				}
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"patient.age between 43 and 75",
		"(patient.age between 25 and 65) AND (patient.diagnosis_code = '40W')",
		"region in ('Dallas', 'Houston')",
		"x >= 5 AND y < 3.5",
	}
	for _, in := range inputs {
		s1 := MustParse(in)
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("re-parsing %q (from %q): %v", s1.String(), in, err)
		}
		if s1.String() != s2.String() {
			t.Errorf("round trip drift: %q -> %q", s1.String(), s2.String())
		}
	}
}

func TestParseOperators(t *testing.T) {
	s := MustParse("x > 5")
	a, _ := s.Atom("x")
	if a.Matches(Num(5)) || !a.Matches(Num(5.01)) {
		t.Error("x > 5 should be an open bound")
	}
	s = MustParse("x = 5")
	a, _ = s.Atom("x")
	if !a.Matches(Num(5)) || a.Matches(Num(4)) {
		t.Error("x = 5 should match exactly 5")
	}
	s = MustParse("x <= -2.5")
	a, _ = s.Atom("x")
	if !a.Matches(Num(-2.5)) || a.Matches(Num(-2.4)) {
		t.Error("x <= -2.5 boundary wrong")
	}
}

func TestValueCompare(t *testing.T) {
	if Num(1).Compare(Num(2)) != -1 || Num(2).Compare(Num(1)) != 1 || Num(1).Compare(Num(1)) != 0 {
		t.Error("numeric compare wrong")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Error("string compare wrong")
	}
	if Num(1).Compare(Str("a")) != -1 || Str("a").Compare(Num(1)) != 1 {
		t.Error("cross-kind compare should order numbers before strings")
	}
}

func TestValueString(t *testing.T) {
	if got := Num(42).String(); got != "42" {
		t.Errorf("Num(42) = %q", got)
	}
	if got := Num(2.5).String(); got != "2.5" {
		t.Errorf("Num(2.5) = %q", got)
	}
	if got := Str("40W").String(); got != "'40W'" {
		t.Errorf("Str = %q", got)
	}
	if got := Num(math.Inf(1)).String(); !strings.Contains(got, "Inf") && got != "+Inf" {
		t.Logf("inf renders as %q (informational)", got)
	}
}

// Property: Set.Overlaps is symmetric for parsed range constraints.
func TestSetOverlapSymmetryProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		lo1, hi1 := minmax(float64(a1), float64(a2))
		lo2, hi2 := minmax(float64(b1), float64(b2))
		s1 := NewSet(Atom{Field: "x", Interval: NewRange(lo1, hi1)})
		s2 := NewSet(Atom{Field: "x", Interval: NewRange(lo2, hi2)})
		return s1.Overlaps(s2) == s2.Overlaps(s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Covers implies Overlaps for satisfiable sets.
func TestCoversImpliesOverlapsProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int8) bool {
		lo1, hi1 := minmax(float64(a1), float64(a2))
		lo2, hi2 := minmax(float64(b1), float64(b2))
		s1 := NewSet(Atom{Field: "x", Interval: NewRange(lo1, hi1)})
		s2 := NewSet(Atom{Field: "x", Interval: NewRange(lo2, hi2)})
		if s1.Covers(s2) && !s2.Unsatisfiable() {
			return s1.Overlaps(s2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func minmax(a, b float64) (float64, float64) {
	if a > b {
		return b, a
	}
	return a, b
}
