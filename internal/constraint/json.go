package constraint

import (
	"encoding/json"
	"fmt"
)

// Values and Sets travel inside KQML message content, so they marshal to
// JSON. A Value encodes as {"n": 1.5} or {"s": "40W"}; a Set encodes as its
// list of atoms.

type valueJSON struct {
	N *float64 `json:"n,omitempty"`
	S *string  `json:"s,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.kind == KindNumber {
		n := v.num
		return json.Marshal(valueJSON{N: &n})
	}
	s := v.str
	return json.Marshal(valueJSON{S: &s})
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var raw valueJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch {
	case raw.N != nil && raw.S != nil:
		return fmt.Errorf("constraint: value cannot be both number and string")
	case raw.N != nil:
		*v = Num(*raw.N)
	case raw.S != nil:
		*v = Str(*raw.S)
	default:
		// Neither present: the zero string value (e.g. {"s": ""}
		// compacted by omitempty).
		*v = Str("")
	}
	return nil
}

// MarshalJSON implements json.Marshaler; the set encodes as its atom list.
func (s *Set) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.Atoms())
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Set) UnmarshalJSON(data []byte) error {
	var atoms []Atom
	if err := json.Unmarshal(data, &atoms); err != nil {
		return err
	}
	*s = Set{}
	for _, a := range atoms {
		s.Add(a)
	}
	return nil
}
