package constraint

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a conjunction of atomic constraints in the paper's textual
// form and returns the corresponding Set. The grammar (case-insensitive
// keywords):
//
//	expr    := term { "AND" term }
//	term    := "(" expr ")" | atom | "true"
//	atom    := field "between" value "and" value
//	         | field op value
//	         | field "in" "(" value { "," value } ")"
//	op      := "=" | "!=" is not supported | "<" | "<=" | ">" | ">="
//	field   := ident { "." ident }   -- e.g. patient.age, diagnosis_code
//	value   := number | 'string' | "string" | bareword
//
// Examples accepted verbatim from the paper:
//
//	patient age between 43 and 75
//	(patient age between 25 and 65) AND (patient.diagnosis code = '40W')
//
// Spaces inside field names (an artifact of the paper's prose) are folded
// into separators: "patient age" parses as field "patient.age".
func Parse(input string) (*Set, error) {
	p := &parser{toks: lex(input)}
	set := &Set{}
	if err := p.expr(set); err != nil {
		return nil, fmt.Errorf("constraint: parsing %q: %w", input, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("constraint: parsing %q: unexpected trailing %q", input, p.peek())
	}
	return set, nil
}

// MustParse is Parse, panicking on error; for tests and static tables.
func MustParse(input string) *Set {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp // = < <= > >=
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < len(s) && s[j] != quote {
				j++
			}
			// An unterminated string takes the rest of the input; the
			// parser surfaces errors on structure, not lexing.
			end := j
			toks = append(toks, token{tokString, s[i+1 : end]})
			if j < len(s) {
				j++
			}
			i = j
		case c == '=' || c == '<' || c == '>':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			toks = append(toks, token{tokOp, s[i:j]})
			i = j
		case c == '-' || c == '+' || unicode.IsDigit(rune(c)):
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				((s[j] == '-' || s[j] == '+') && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			// A digit run flowing into letters is a bareword like 40W,
			// not a number followed by an identifier.
			if j < len(s) && (unicode.IsLetter(rune(s[j])) || s[j] == '_') {
				for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
					j++
				}
				toks = append(toks, token{tokIdent, s[i:j]})
			} else {
				toks = append(toks, token{tokNumber, s[i:j]})
			}
			i = j
		default:
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_' || s[j] == '.' || s[j] == '-') {
				j++
			}
			if j == i { // unknown byte; skip to avoid an infinite loop
				i++
				continue
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		}
	}
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) next() (token, error) {
	if p.eof() {
		return token{}, fmt.Errorf("unexpected end of input")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.eof() {
		return false
	}
	t := p.toks[p.pos]
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expr(set *Set) error {
	if err := p.term(set); err != nil {
		return err
	}
	for p.acceptKeyword("and") {
		if err := p.term(set); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) term(set *Set) error {
	if p.eof() {
		return fmt.Errorf("expected a constraint, got end of input")
	}
	if p.toks[p.pos].kind == tokLParen {
		p.pos++
		if err := p.expr(set); err != nil {
			return err
		}
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.kind != tokRParen {
			return fmt.Errorf("expected ')', got %q", t.text)
		}
		return nil
	}
	return p.atom(set)
}

func (p *parser) atom(set *Set) error {
	if p.acceptKeyword("true") {
		return nil
	}
	// Field: one or more identifiers; interior identifiers fold into a
	// dotted path so "patient age" means "patient.age".
	// Space-separated parts fold into the path: "patient age" means
	// "patient.age", while "patient.diagnosis code" means
	// "patient.diagnosis_code" (the space extends the slot name once a
	// class qualifier is present).
	var field string
	for !p.eof() && p.toks[p.pos].kind == tokIdent &&
		!isKeyword(p.toks[p.pos].text, "between", "in", "and") {
		part := p.toks[p.pos].text
		p.pos++
		switch {
		case field == "":
			field = part
		case strings.Contains(field, "."):
			field += "_" + part
		default:
			field += "." + part
		}
	}
	if field == "" {
		return fmt.Errorf("expected a field name, got %q", p.peek())
	}
	field = normalizeField(field)

	switch {
	case p.acceptKeyword("between"):
		lo, err := p.numberValue()
		if err != nil {
			return err
		}
		if !p.acceptKeyword("and") {
			return fmt.Errorf("expected 'and' in between-constraint on %s", field)
		}
		hi, err := p.numberValue()
		if err != nil {
			return err
		}
		set.Add(Atom{Field: field, Interval: NewRange(lo, hi)})
		return nil
	case p.acceptKeyword("in"):
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.kind != tokLParen {
			return fmt.Errorf("expected '(' after 'in', got %q", t.text)
		}
		var vals []Value
		for {
			v, err := p.value()
			if err != nil {
				return err
			}
			vals = append(vals, v)
			t, err := p.next()
			if err != nil {
				return err
			}
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return fmt.Errorf("expected ',' or ')' in value list, got %q", t.text)
			}
		}
		set.Add(Atom{Field: field, Allowed: vals})
		return nil
	default:
		t, err := p.next()
		if err != nil {
			return fmt.Errorf("expected an operator after %s: %w", field, err)
		}
		if t.kind != tokOp {
			return fmt.Errorf("expected an operator after %s, got %q", field, t.text)
		}
		v, err := p.value()
		if err != nil {
			return err
		}
		switch t.text {
		case "=":
			if v.Kind() == KindNumber {
				set.Add(Atom{Field: field, Interval: Exactly(v.Number())})
			} else {
				set.Add(Atom{Field: field, Allowed: []Value{v}})
			}
		case "<", "<=", ">", ">=":
			if v.Kind() != KindNumber {
				return fmt.Errorf("operator %q on %s requires a number, got %s", t.text, field, v)
			}
			switch t.text {
			case "<":
				set.Add(Atom{Field: field, Interval: LessThan(v.Number())})
			case "<=":
				set.Add(Atom{Field: field, Interval: AtMost(v.Number())})
			case ">":
				set.Add(Atom{Field: field, Interval: GreaterThan(v.Number())})
			case ">=":
				set.Add(Atom{Field: field, Interval: AtLeast(v.Number())})
			}
		default:
			return fmt.Errorf("unsupported operator %q", t.text)
		}
		return nil
	}
}

func (p *parser) value() (Value, error) {
	t, err := p.next()
	if err != nil {
		return Value{}, err
	}
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad number %q: %w", t.text, err)
		}
		return Num(f), nil
	case tokString:
		return Str(t.text), nil
	case tokIdent:
		// Barewords like 40W are treated as strings.
		return Str(t.text), nil
	default:
		return Value{}, fmt.Errorf("expected a value, got %q", t.text)
	}
}

func (p *parser) numberValue() (float64, error) {
	v, err := p.value()
	if err != nil {
		return 0, err
	}
	if v.Kind() != KindNumber {
		return 0, fmt.Errorf("expected a number, got %s", v)
	}
	return v.Number(), nil
}

func isKeyword(s string, kws ...string) bool {
	for _, kw := range kws {
		if strings.EqualFold(s, kw) {
			return true
		}
	}
	return false
}

// normalizeField lower-cases a field path and collapses the paper's
// space/underscore variants so "patient.diagnosis code" and
// "patient.diagnosis_code" name the same slot.
func normalizeField(f string) string {
	f = strings.ToLower(f)
	f = strings.ReplaceAll(f, "-", "_")
	return f
}
