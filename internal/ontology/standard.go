package ontology

// Standard conversation and language names used across the reproduction.
const (
	LangKQML = "KQML"
	LangSQL2 = "SQL 2.0"
	LangLDL  = "LDL"
	LangOQL  = "OQL"

	ConvAskAll    = "ask-all"
	ConvSubscribe = "subscribe"
	ConvUpdate    = "update"
	ConvAdvertise = "advertise"
	ConvRecruit   = "recruit"
)

// Healthcare returns the healthcare domain ontology from Section 2.4:
// diagnosis and patient classes, with a physician subclass hierarchy
// standing in for the paper's "podiatrists in Dallas and Houston"
// specialization example.
func Healthcare() *Ontology {
	o := New("healthcare")
	o.MustAddClass(Class{
		Name:  "patient",
		Slots: []string{"patient_id", "patient_age", "patient_name", "region"},
		Key:   "patient_id",
	})
	// diagnosis has no single-slot key: one patient can carry several
	// diagnoses and one code applies to many patients.
	o.MustAddClass(Class{
		Name:  "diagnosis",
		Slots: []string{"diagnosis_code", "patient_id", "diagnosis_date", "cost"},
	})
	o.MustAddClass(Class{
		Name:  "physician",
		Slots: []string{"physician_id", "physician_name", "region"},
		Key:   "physician_id",
	})
	o.MustAddClass(Class{
		Name:  "podiatrist",
		Slots: []string{"specialty_cert"},
		IsA:   "physician",
	})
	o.MustAddClass(Class{
		Name:  "hospital_stay",
		Slots: []string{"stay_id", "patient_id", "procedure", "cost", "days"},
		Key:   "stay_id",
	})
	return o
}

// Generic returns the C1/C2/C3 toy ontology of the paper's Figures 5-7
// walkthrough, with C2a/C2b subclasses used by the class-hierarchy (CH)
// query streams of Section 5.1. Each class carries a key slot `id` plus
// generic attribute slots so vertical fragmentation has something to split.
func Generic() *Ontology {
	o := New("generic")
	for _, name := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		o.MustAddClass(Class{
			Name:  name,
			Slots: []string{"id", "a", "b", "c", "d"},
			Key:   "id",
		})
	}
	o.MustAddClass(Class{Name: "C2a", Slots: []string{"e"}, IsA: "C2"})
	o.MustAddClass(Class{Name: "C2b", Slots: []string{"f"}, IsA: "C2"})
	o.MustAddClass(Class{Name: "C6a", Slots: []string{"g"}, IsA: "C6"})
	o.MustAddClass(Class{Name: "C6b", Slots: []string{"h"}, IsA: "C6"})
	return o
}
