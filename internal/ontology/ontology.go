// Package ontology implements InfoSleuth's common service ontology: the
// shared vocabulary agents use to describe themselves to brokers and that
// brokers reason over when matchmaking (Sections 2.1, 2.3 and 3.3 of the
// paper).
//
// It has three parts:
//
//   - Domain ontologies (e.g. "healthcare") with classes, slots, keys and a
//     class hierarchy — the vocabulary of *what information* an agent holds.
//   - The capability hierarchy (Figure 2) — the vocabulary of *what
//     operations* an agent can perform, with containment ("an agent that
//     does all query processing certainly does relational query
//     processing").
//   - Advertisements and broker queries — structured descriptions covering
//     the syntactic knowledge of Figure 8, the semantic knowledge of
//     Figure 9, and the multibroker extensions of Figure 13 — plus the
//     Match relation the broker's reasoning engine implements.
package ontology

import (
	"fmt"
	"sort"
	"strings"

	"infosleuth/internal/constraint"
)

// AgentType classifies an agent in the service ontology ("agent type" in
// Figure 8).
type AgentType string

// The agent types appearing in the paper's architecture (Figure 1).
const (
	TypeUser     AgentType = "user"
	TypeBroker   AgentType = "broker"
	TypeResource AgentType = "resource"
	TypeQuery    AgentType = "query" // multiresource query agents
	TypeMonitor  AgentType = "monitor"
	TypeOntology AgentType = "ontology"
	TypeAny      AgentType = ""
)

// Class describes one class in a domain ontology: its slots, key slot, and
// optional superclass (IsA) for class-hierarchy reasoning.
type Class struct {
	Name  string
	Slots []string
	Key   string
	// IsA names the superclass, or "" for a root class.
	IsA string
}

// Ontology is a named domain model: a set of classes with a subclass
// hierarchy. InfoSleuth communities service requests over a set of common
// ontologies such as "healthcare".
type Ontology struct {
	Name    string
	classes map[string]*Class
}

// New returns an empty ontology with the given name.
func New(name string) *Ontology {
	return &Ontology{Name: name, classes: make(map[string]*Class)}
}

// AddClass registers a class. It returns an error if the class is already
// defined or its superclass is unknown.
func (o *Ontology) AddClass(c Class) error {
	if _, dup := o.classes[c.Name]; dup {
		return fmt.Errorf("ontology %s: class %q already defined", o.Name, c.Name)
	}
	if c.IsA != "" {
		if _, ok := o.classes[c.IsA]; !ok {
			return fmt.Errorf("ontology %s: class %q declares unknown superclass %q", o.Name, c.Name, c.IsA)
		}
	}
	cp := c
	cp.Slots = append([]string(nil), c.Slots...)
	o.classes[c.Name] = &cp
	return nil
}

// MustAddClass is AddClass, panicking on error; for static ontology tables.
func (o *Ontology) MustAddClass(c Class) {
	if err := o.AddClass(c); err != nil {
		panic(err)
	}
}

// Class returns a class by name.
func (o *Ontology) Class(name string) (*Class, bool) {
	c, ok := o.classes[name]
	return c, ok
}

// Classes returns all class names in sorted order.
func (o *Ontology) Classes() []string {
	out := make([]string, 0, len(o.classes))
	for name := range o.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ClassDefs returns every class definition, superclasses before their
// subclasses (so the list can rebuild the ontology), ties broken by name.
// Ontology agents serve domain models to other agents in this form.
func (o *Ontology) ClassDefs() []Class {
	depth := func(name string) int {
		d := 0
		for cur := name; cur != ""; {
			c, ok := o.classes[cur]
			if !ok {
				break
			}
			cur = c.IsA
			d++
		}
		return d
	}
	names := o.Classes()
	sort.SliceStable(names, func(i, j int) bool {
		di, dj := depth(names[i]), depth(names[j])
		if di != dj {
			return di < dj
		}
		return names[i] < names[j]
	})
	out := make([]Class, 0, len(names))
	for _, n := range names {
		c := o.classes[n]
		cp := *c
		cp.Slots = append([]string(nil), c.Slots...)
		out = append(out, cp)
	}
	return out
}

// FromClasses rebuilds an ontology from class definitions (the inverse of
// ClassDefs; definitions may arrive in any order).
func FromClasses(name string, classes []Class) (*Ontology, error) {
	o := New(name)
	pending := append([]Class(nil), classes...)
	for len(pending) > 0 {
		progressed := false
		var rest []Class
		for _, c := range pending {
			if c.IsA == "" {
				if err := o.AddClass(c); err != nil {
					return nil, err
				}
				progressed = true
				continue
			}
			if _, ok := o.classes[c.IsA]; ok {
				if err := o.AddClass(c); err != nil {
					return nil, err
				}
				progressed = true
				continue
			}
			rest = append(rest, c)
		}
		if !progressed {
			return nil, fmt.Errorf("ontology %s: unresolvable superclass references in %d classes", name, len(rest))
		}
		pending = rest
	}
	return o, nil
}

// IsSubclassOf reports whether sub is super or a (transitive) subclass of
// super.
func (o *Ontology) IsSubclassOf(sub, super string) bool {
	for cur := sub; cur != ""; {
		if cur == super {
			return true
		}
		c, ok := o.classes[cur]
		if !ok {
			return false
		}
		cur = c.IsA
	}
	return false
}

// SlotsOf returns the slots of a class including those inherited from its
// superclasses, in declaration order (superclass slots first), without
// duplicates.
func (o *Ontology) SlotsOf(name string) []string {
	var chain []*Class
	for cur := name; cur != ""; {
		c, ok := o.classes[cur]
		if !ok {
			break
		}
		chain = append(chain, c)
		cur = c.IsA
	}
	seen := make(map[string]bool)
	var out []string
	for i := len(chain) - 1; i >= 0; i-- {
		for _, s := range chain[i].Slots {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// KeyOf returns the key slot of a class, walking up the hierarchy if the
// class itself declares none.
func (o *Ontology) KeyOf(name string) string {
	for cur := name; cur != ""; {
		c, ok := o.classes[cur]
		if !ok {
			return ""
		}
		if c.Key != "" {
			return c.Key
		}
		cur = c.IsA
	}
	return ""
}

// Fragment describes the portion of a domain ontology that an agent serves:
// which classes (optionally restricted to a slot subset, for vertical
// fragmentation) and which data constraints restrict the instances held
// ("patients between the age of 43 and 75").
type Fragment struct {
	// Ontology names the domain model, e.g. "healthcare".
	Ontology string
	// Classes lists the supported classes.
	Classes []string
	// Slots optionally restricts the visible slots per class; a class
	// absent from the map exposes all its slots.
	Slots map[string][]string
	// Constraints restrict the instances held. Nil means unrestricted.
	Constraints *constraint.Set
}

// HasClass reports whether the fragment serves the named class.
func (f *Fragment) HasClass(class string) bool {
	for _, c := range f.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// SlotsFor returns the slots the fragment exposes for a class, given the
// full ontology; nil ontology falls back to the declared restriction only.
func (f *Fragment) SlotsFor(class string, o *Ontology) []string {
	if f.Slots != nil {
		if s, ok := f.Slots[class]; ok {
			return s
		}
	}
	if o != nil {
		return o.SlotsOf(class)
	}
	return nil
}

// String renders a compact description of the fragment.
func (f *Fragment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s", f.Ontology, strings.Join(f.Classes, ", "))
	if f.Constraints.Len() > 0 {
		fmt.Fprintf(&b, " | %s", f.Constraints)
	}
	b.WriteString(")")
	return b.String()
}

// Properties are the pragmatic agent properties of Figure 9: adaptivity and
// processing statistics.
type Properties struct {
	Mobile    bool
	Cloneable bool
	// EstimatedResponseSec is the agent's advertised estimated response
	// time in seconds ("can return the answer within 5 seconds"); 0 means
	// unadvertised.
	EstimatedResponseSec float64
	// ThroughputQPS is the advertised processing throughput; 0 means
	// unadvertised.
	ThroughputQPS float64
	// EstimatedRows is the advertised total row count across the agent's
	// served class fragments — a sizing hint the MRQ's federated planner
	// uses to pick the build side of a semi-join. 0 means unadvertised.
	EstimatedRows int64
}

// BrokerInfo is the multibroker service-ontology extension of Figure 13,
// present only on broker advertisements.
type BrokerInfo struct {
	// Community names the agent community the broker serves.
	Community string
	// Consortia lists the broker consortia this broker belongs to.
	Consortia []string
	// AgentTypes lists the types of agents held in the broker's
	// repository (its specialization by agent type).
	AgentTypes []AgentType
	// Specializations lists the ontologies the broker specializes in;
	// empty means general-purpose.
	Specializations []string
	// SpecializationClasses optionally narrows the specialization to
	// specific ontology classes (Figure 13's "restrictions on
	// ontologies"); empty means all classes of the specialization
	// ontologies.
	SpecializationClasses []string
	// ConversationTypes lists broker conversation types supported
	// (e.g. delegation, forwarding).
	ConversationTypes []string
}

// Advertisement is the full self-description an agent sends to a broker:
// the syntactic knowledge of Figure 8, the semantic knowledge of Figure 9,
// and for brokers the Figure 13 extensions.
type Advertisement struct {
	// Agent name and location.
	Name    string
	Address string
	Type    AgentType

	// Syntactic knowledge.
	CommLanguages    []string // e.g. "KQML"
	ContentLanguages []string // e.g. "SQL 2.0", "LDL"

	// Semantic knowledge: capabilities.
	Conversations []string // e.g. "ask-all", "subscribe", "update"
	Capabilities  []string // e.g. "relational query processing"

	// Semantic knowledge: content.
	Content []Fragment

	// Pragmatic properties.
	Properties Properties

	// Broker, when non-nil, carries the multibroker extensions.
	Broker *BrokerInfo
}

// Validate checks structural well-formedness: a name, a type, and no
// fragment without an ontology name.
func (ad *Advertisement) Validate() error {
	if ad.Name == "" {
		return fmt.Errorf("advertisement missing agent name")
	}
	if ad.Type == TypeAny {
		return fmt.Errorf("advertisement for %q missing agent type", ad.Name)
	}
	for i, f := range ad.Content {
		if f.Ontology == "" {
			return fmt.Errorf("advertisement for %q: content fragment %d missing ontology name", ad.Name, i)
		}
		if len(f.Classes) == 0 {
			return fmt.Errorf("advertisement for %q: content fragment %d lists no classes", ad.Name, i)
		}
	}
	if ad.Type == TypeBroker && ad.Broker == nil {
		return fmt.Errorf("advertisement for broker %q missing broker info", ad.Name)
	}
	return nil
}

// Clone returns a deep copy of the advertisement.
func (ad *Advertisement) Clone() *Advertisement {
	cp := *ad
	cp.CommLanguages = append([]string(nil), ad.CommLanguages...)
	cp.ContentLanguages = append([]string(nil), ad.ContentLanguages...)
	cp.Conversations = append([]string(nil), ad.Conversations...)
	cp.Capabilities = append([]string(nil), ad.Capabilities...)
	cp.Content = make([]Fragment, len(ad.Content))
	for i, f := range ad.Content {
		nf := f
		nf.Classes = append([]string(nil), f.Classes...)
		if f.Slots != nil {
			nf.Slots = make(map[string][]string, len(f.Slots))
			for k, v := range f.Slots {
				nf.Slots[k] = append([]string(nil), v...)
			}
		}
		nf.Constraints = f.Constraints.Clone()
		cp.Content[i] = nf
	}
	if ad.Broker != nil {
		nb := *ad.Broker
		nb.Consortia = append([]string(nil), ad.Broker.Consortia...)
		nb.AgentTypes = append([]AgentType(nil), ad.Broker.AgentTypes...)
		nb.Specializations = append([]string(nil), ad.Broker.Specializations...)
		nb.SpecializationClasses = append([]string(nil), ad.Broker.SpecializationClasses...)
		nb.ConversationTypes = append([]string(nil), ad.Broker.ConversationTypes...)
		cp.Broker = &nb
	}
	return &cp
}

// String renders a one-line summary.
func (ad *Advertisement) String() string {
	return fmt.Sprintf("%s[%s]@%s", ad.Name, ad.Type, ad.Address)
}
