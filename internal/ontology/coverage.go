package ontology

import "strings"

// AdvertisedColumns returns the lowercased slot set the advertisement
// exposes for queries over class in the named ontology, merging every
// fragment that can answer such a query — the class itself or, with the
// ontology's hierarchy, a served subclass (a C2a resource answers C2
// queries for its instances). Nil means the advertisement does not serve
// the class at all. MRQ agents consult this before pushing selections or
// projections down to a resource: a column a resource never advertised
// cannot be evaluated there.
func (ad *Advertisement) AdvertisedColumns(ontologyName, class string, o *Ontology) map[string]bool {
	var out map[string]bool
	for i := range ad.Content {
		f := &ad.Content[i]
		if !strings.EqualFold(f.Ontology, ontologyName) {
			continue
		}
		for _, served := range f.Classes {
			if !strings.EqualFold(served, class) && (o == nil || !o.IsSubclassOf(served, class)) {
				continue
			}
			if out == nil {
				out = make(map[string]bool, 8)
			}
			for _, s := range f.SlotsFor(served, o) {
				out[strings.ToLower(s)] = true
			}
		}
	}
	return out
}

// CoversColumns reports whether the advertisement exposes every named
// column (case-insensitively) for queries over class in the named
// ontology.
func (ad *Advertisement) CoversColumns(ontologyName, class string, cols []string, o *Ontology) bool {
	have := ad.AdvertisedColumns(ontologyName, class, o)
	if have == nil {
		return false
	}
	for _, c := range cols {
		if !have[strings.ToLower(c)] {
			return false
		}
	}
	return true
}
