package ontology

import (
	"strings"
	"testing"

	"infosleuth/internal/constraint"
)

func TestCapabilityIntrospection(t *testing.T) {
	h := DefaultHierarchy()
	if !h.Known(CapSelect) || h.Known("levitation") {
		t.Error("Known wrong")
	}
	caps := h.Capabilities()
	if len(caps) < 10 {
		t.Errorf("Capabilities = %v", caps)
	}
	// Sorted.
	for i := 1; i < len(caps); i++ {
		if caps[i] < caps[i-1] {
			t.Fatalf("not sorted: %v", caps)
		}
	}
}

func TestQueryString(t *testing.T) {
	mobile := true
	q := &Query{
		Type:            TypeResource,
		ContentLanguage: LangSQL2,
		Capabilities:    []string{CapSelect, CapJoin},
		Ontology:        "healthcare",
		Classes:         []string{"patient"},
		Constraints:     constraint.MustParse("patient.patient_age between 25 and 65"),
		RequireMobile:   &mobile,
	}
	s := q.String()
	for _, want := range []string{"type=resource", "lang=SQL 2.0", "caps=select+join",
		"ontology=healthcare", "classes=patient", "patient.patient_age"} {
		if !strings.Contains(s, want) {
			t.Errorf("Query.String() = %q missing %q", s, want)
		}
	}
	if got := (&Query{}).String(); got != "query(any)" {
		t.Errorf("empty query string = %q", got)
	}
}

func TestFragmentString(t *testing.T) {
	f := &Fragment{
		Ontology:    "healthcare",
		Classes:     []string{"patient", "diagnosis"},
		Constraints: constraint.MustParse("patient.patient_age between 43 and 75"),
	}
	s := f.String()
	if !strings.Contains(s, "healthcare(patient, diagnosis") || !strings.Contains(s, "43") {
		t.Errorf("Fragment.String() = %q", s)
	}
	bare := &Fragment{Ontology: "o", Classes: []string{"c"}}
	if got := bare.String(); got != "o(c)" {
		t.Errorf("bare fragment = %q", got)
	}
}

func TestAdvertisementString(t *testing.T) {
	ad := &Advertisement{Name: "RA", Type: TypeResource, Address: "tcp://h:1"}
	if got := ad.String(); got != "RA[resource]@tcp://h:1" {
		t.Errorf("Advertisement.String() = %q", got)
	}
}

func TestMatchReasonValues(t *testing.T) {
	// The rejection reasons render usefully in logs.
	for _, r := range []MatchReason{
		RejectType, RejectCommLanguage, RejectContentLang, RejectConversation,
		RejectCapability, RejectOntology, RejectClass, RejectSlot,
		RejectConstraints, RejectResponseTime, RejectMobility,
	} {
		if r == Matched || string(r) == "" {
			t.Error("rejection reason should be non-empty")
		}
	}
}

func TestBrokerAdvertisementClone(t *testing.T) {
	ad := &Advertisement{
		Name: "B1", Type: TypeBroker, Address: "inproc://b1",
		Broker: &BrokerInfo{
			Community:             "comm",
			Consortia:             []string{"c1"},
			AgentTypes:            []AgentType{TypeResource},
			Specializations:       []string{"healthcare"},
			SpecializationClasses: []string{"patient"},
			ConversationTypes:     []string{"forwarding"},
		},
	}
	cp := ad.Clone()
	cp.Broker.Consortia[0] = "mutated"
	cp.Broker.Specializations[0] = "mutated"
	cp.Broker.SpecializationClasses[0] = "mutated"
	if ad.Broker.Consortia[0] != "c1" || ad.Broker.Specializations[0] != "healthcare" ||
		ad.Broker.SpecializationClasses[0] != "patient" {
		t.Error("broker info clone shares slices")
	}
}

func TestWorldNilSafety(t *testing.T) {
	var w *World
	if w.Ontology("x") != nil {
		t.Error("nil world should return nil ontology")
	}
	// Matching without a world falls back to exact capability equality.
	ad := &Advertisement{
		Name: "a", Type: TypeResource,
		Capabilities: []string{CapQueryProcessing},
	}
	q := &Query{Capabilities: []string{CapSelect}}
	if Match(nil, ad, q) == Matched {
		t.Error("nil world must not apply hierarchy subsumption")
	}
	q2 := &Query{Capabilities: []string{CapQueryProcessing}}
	if Match(nil, ad, q2) != Matched {
		t.Error("nil world should still match exact capabilities")
	}
}

func TestClassDefsInPackage(t *testing.T) {
	o := Healthcare()
	defs := o.ClassDefs()
	if len(defs) != len(o.Classes()) {
		t.Fatalf("defs = %d, classes = %d", len(defs), len(o.Classes()))
	}
	// Superclasses come before subclasses.
	pos := make(map[string]int)
	for i, c := range defs {
		pos[c.Name] = i
	}
	if pos["physician"] > pos["podiatrist"] {
		t.Error("superclass should precede subclass in ClassDefs")
	}
	rebuilt, err := FromClasses("copy", defs)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.IsSubclassOf("podiatrist", "physician") {
		t.Error("rebuilt hierarchy broken")
	}
	// Definitions are copies: mutating them must not affect the source.
	defs[0].Slots[0] = "mutated"
	fresh := o.ClassDefs()
	if fresh[0].Slots[0] == "mutated" {
		t.Error("ClassDefs leaked internal slot slices")
	}
	// Class accessor.
	c, ok := o.Class("patient")
	if !ok || c.Key != "patient_id" {
		t.Errorf("Class(patient) = %+v %v", c, ok)
	}
	if _, ok := o.Class("nope"); ok {
		t.Error("unknown class should miss")
	}
}

func TestFollowOptionUnknownString(t *testing.T) {
	if got := FollowOption(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown follow option = %q", got)
	}
}
