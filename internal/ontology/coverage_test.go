package ontology

import "testing"

func TestAdvertisedColumnsFullClass(t *testing.T) {
	o := Generic()
	ad := &Advertisement{Content: []Fragment{{Ontology: "generic", Classes: []string{"C2"}}}}
	cols := ad.AdvertisedColumns("generic", "C2", o)
	for _, c := range []string{"id", "a", "b", "c", "d"} {
		if !cols[c] {
			t.Errorf("missing advertised column %q", c)
		}
	}
	if !ad.CoversColumns("generic", "C2", []string{"ID", "A"}, o) {
		t.Errorf("CoversColumns is case-sensitive; want case-insensitive")
	}
}

func TestAdvertisedColumnsVerticalRestriction(t *testing.T) {
	o := Generic()
	ad := &Advertisement{Content: []Fragment{{
		Ontology: "generic",
		Classes:  []string{"C2"},
		Slots:    map[string][]string{"C2": {"id", "a"}},
	}}}
	cols := ad.AdvertisedColumns("generic", "C2", o)
	if !cols["id"] || !cols["a"] {
		t.Fatalf("restricted slots missing: %v", cols)
	}
	if cols["b"] {
		t.Errorf("column b advertised despite slot restriction")
	}
	if ad.CoversColumns("generic", "C2", []string{"b"}, o) {
		t.Errorf("CoversColumns(b) = true for a fragment restricted to id,a")
	}
}

func TestAdvertisedColumnsSubclassServesSuperclassQuery(t *testing.T) {
	o := Generic()
	ad := &Advertisement{Content: []Fragment{{Ontology: "generic", Classes: []string{"C2a"}}}}
	cols := ad.AdvertisedColumns("generic", "C2", o)
	if cols == nil {
		t.Fatalf("a C2a resource answers C2 queries; want non-nil coverage")
	}
	if !cols["id"] || !cols["e"] {
		t.Errorf("subclass coverage missing inherited or own slots: %v", cols)
	}
}

func TestAdvertisedColumnsNoService(t *testing.T) {
	o := Generic()
	ad := &Advertisement{Content: []Fragment{{Ontology: "generic", Classes: []string{"C1"}}}}
	if cols := ad.AdvertisedColumns("generic", "C2", o); cols != nil {
		t.Errorf("coverage for unserved class = %v, want nil", cols)
	}
	if ad.CoversColumns("generic", "C2", nil, o) {
		t.Errorf("CoversColumns = true for a class the advertisement does not serve")
	}
	if cols := ad.AdvertisedColumns("healthcare", "C2", o); cols != nil {
		t.Errorf("coverage across ontologies = %v, want nil", cols)
	}
}
