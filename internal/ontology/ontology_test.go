package ontology

import (
	"testing"

	"infosleuth/internal/constraint"
)

func TestOntologyClassHierarchy(t *testing.T) {
	o := Healthcare()
	if !o.IsSubclassOf("podiatrist", "physician") {
		t.Error("podiatrist should be a subclass of physician")
	}
	if !o.IsSubclassOf("physician", "physician") {
		t.Error("a class is a subclass of itself")
	}
	if o.IsSubclassOf("physician", "podiatrist") {
		t.Error("superclass is not a subclass of its child")
	}
	if o.IsSubclassOf("patient", "physician") {
		t.Error("unrelated classes are not subclasses")
	}
	if o.IsSubclassOf("nonexistent", "physician") {
		t.Error("unknown class is not a subclass of anything")
	}
}

func TestOntologySlotInheritance(t *testing.T) {
	o := Healthcare()
	slots := o.SlotsOf("podiatrist")
	want := map[string]bool{"physician_id": true, "physician_name": true, "region": true, "specialty_cert": true}
	if len(slots) != len(want) {
		t.Fatalf("SlotsOf(podiatrist) = %v, want %d slots", slots, len(want))
	}
	for _, s := range slots {
		if !want[s] {
			t.Errorf("unexpected slot %q", s)
		}
	}
	// Superclass slots come first.
	if slots[0] != "physician_id" {
		t.Errorf("inherited slots should precede own slots, got %v", slots)
	}
}

func TestOntologyKeyInheritance(t *testing.T) {
	o := Healthcare()
	if got := o.KeyOf("podiatrist"); got != "physician_id" {
		t.Errorf("KeyOf(podiatrist) = %q, want inherited physician_id", got)
	}
	if got := o.KeyOf("patient"); got != "patient_id" {
		t.Errorf("KeyOf(patient) = %q", got)
	}
	if got := o.KeyOf("nope"); got != "" {
		t.Errorf("KeyOf(unknown) = %q, want empty", got)
	}
}

func TestOntologyAddClassErrors(t *testing.T) {
	o := New("t")
	if err := o.AddClass(Class{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddClass(Class{Name: "a"}); err == nil {
		t.Error("duplicate class should error")
	}
	if err := o.AddClass(Class{Name: "b", IsA: "missing"}); err == nil {
		t.Error("unknown superclass should error")
	}
}

func TestCapabilityHierarchyFigure2(t *testing.T) {
	h := DefaultHierarchy()
	// "if an agent does all query processing, then it certainly does
	// relational query processing and could process a simple select"
	if !h.Subsumes(CapQueryProcessing, CapSelect) {
		t.Error("query processing should subsume select")
	}
	if !h.Subsumes(CapRelationalQueryProcessing, CapJoin) {
		t.Error("relational query processing should subsume join")
	}
	// "just because an agent can process a simple select query does not
	// mean that it can do any relational query"
	if h.Subsumes(CapSelect, CapRelationalQueryProcessing) {
		t.Error("select must not subsume relational query processing")
	}
	if h.Subsumes(CapOOQueryProcessing, CapSelect) {
		t.Error("OO query processing does not contain relational select")
	}
	if !h.Subsumes(CapSubscription, CapSubscription) {
		t.Error("a capability subsumes itself")
	}
}

func TestCapabilitySatisfies(t *testing.T) {
	h := DefaultHierarchy()
	if !h.Satisfies([]string{CapQueryProcessing}, CapSelect) {
		t.Error("generalist should satisfy a specific request")
	}
	if h.Satisfies([]string{CapSelect}, CapQueryProcessing) {
		t.Error("specialist must not satisfy a general request")
	}
	if !h.Satisfies([]string{CapSelect, CapUnion}, CapUnion) {
		t.Error("exact capability should satisfy")
	}
	if h.Satisfies(nil, CapSelect) {
		t.Error("no capabilities satisfy nothing")
	}
}

func TestCapabilityHierarchyCycleRejected(t *testing.T) {
	h := NewCapabilityHierarchy()
	if err := h.Add("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("c", "a"); err == nil {
		t.Error("cycle should be rejected")
	}
	if err := h.Add("a", "a"); err == nil {
		t.Error("self-containment should be rejected")
	}
	// Re-adding an existing edge is fine.
	if err := h.Add("a", "b"); err != nil {
		t.Errorf("idempotent add failed: %v", err)
	}
}

func TestCapabilityDescendants(t *testing.T) {
	h := DefaultHierarchy()
	desc := h.Descendants(CapRelationalQueryProcessing)
	want := []string{CapJoin, CapProject, CapSelect, CapUnion}
	if len(desc) != len(want) {
		t.Fatalf("Descendants = %v, want %v", desc, want)
	}
	for i := range want {
		if desc[i] != want[i] {
			t.Fatalf("Descendants = %v, want %v", desc, want)
		}
	}
}

func TestCapabilityCaseInsensitive(t *testing.T) {
	h := DefaultHierarchy()
	if !h.Subsumes("Query Processing", "SELECT") {
		t.Error("capability names should match case-insensitively")
	}
}

// resourceAgent5 reproduces the advertisement of Section 2.4 verbatim.
func resourceAgent5() *Advertisement {
	return &Advertisement{
		Name:             "ResourceAgent5",
		Address:          "tcp://b1.mcc.com:4356",
		Type:             TypeResource,
		CommLanguages:    []string{LangKQML},
		ContentLanguages: []string{LangSQL2},
		Conversations:    []string{ConvSubscribe, ConvUpdate, ConvAskAll},
		Capabilities:     []string{CapRelationalQueryProcessing, CapSubscription},
		Content: []Fragment{{
			Ontology:    "healthcare",
			Classes:     []string{"diagnosis", "patient"},
			Constraints: constraint.MustParse("patient.patient_age between 43 and 75"),
		}},
		Properties: Properties{EstimatedResponseSec: 5},
	}
}

// queryAgent2Query reproduces the broker query of Section 2.4: resource
// agents speaking SQL 2.0 over healthcare with patients aged 25-65 and
// diagnosis code 40W.
func queryAgent2Query() *Query {
	return &Query{
		Type:            TypeResource,
		ContentLanguage: LangSQL2,
		Ontology:        "healthcare",
		Constraints: constraint.MustParse(
			"(patient.patient_age between 25 and 65) AND (patient.diagnosis_code = '40W')"),
	}
}

func TestMatchPaperSection24(t *testing.T) {
	w := NewWorld(Healthcare())
	ad := resourceAgent5()
	if err := ad.Validate(); err != nil {
		t.Fatalf("advertisement invalid: %v", err)
	}
	q := queryAgent2Query()
	if err := q.Validate(); err != nil {
		t.Fatalf("query invalid: %v", err)
	}
	if reason := Match(w, ad, q); reason != Matched {
		t.Errorf("paper example should match, got rejection: %s", reason)
	}
}

func TestMatchRejectionReasons(t *testing.T) {
	w := NewWorld(Healthcare())
	base := queryAgent2Query()

	tests := []struct {
		name   string
		mutate func(*Advertisement, *Query)
		want   MatchReason
	}{
		{"wrong type", func(ad *Advertisement, q *Query) { q.Type = TypeQuery }, RejectType},
		{"wrong comm language", func(ad *Advertisement, q *Query) { q.CommLanguage = "FIPA-ACL" }, RejectCommLanguage},
		{"wrong content language", func(ad *Advertisement, q *Query) { q.ContentLanguage = LangOQL }, RejectContentLang},
		{"missing conversation", func(ad *Advertisement, q *Query) { q.Conversations = []string{"emergent"} }, RejectConversation},
		{"capability above advertised", func(ad *Advertisement, q *Query) {
			q.Capabilities = []string{CapQueryProcessing}
		}, RejectCapability},
		{"capability below advertised matches", func(ad *Advertisement, q *Query) {
			q.Capabilities = []string{CapSelect}
		}, Matched},
		{"wrong ontology", func(ad *Advertisement, q *Query) { q.Ontology = "aerospace" }, RejectOntology},
		{"unserved class", func(ad *Advertisement, q *Query) { q.Classes = []string{"hospital_stay"} }, RejectClass},
		{"served class", func(ad *Advertisement, q *Query) { q.Classes = []string{"patient"} }, Matched},
		{"invisible slot", func(ad *Advertisement, q *Query) { q.Slots = []string{"no_such_slot"} }, RejectSlot},
		{"visible slot", func(ad *Advertisement, q *Query) { q.Slots = []string{"patient_age"} }, Matched},
		{"disjoint constraints", func(ad *Advertisement, q *Query) {
			q.Constraints = constraint.MustParse("patient.patient_age between 0 and 20")
		}, RejectConstraints},
		{"response time too high", func(ad *Advertisement, q *Query) { q.MaxResponseSec = 2 }, RejectResponseTime},
		{"response time acceptable", func(ad *Advertisement, q *Query) { q.MaxResponseSec = 10 }, Matched},
		{"mobility mismatch", func(ad *Advertisement, q *Query) {
			mobile := true
			q.RequireMobile = &mobile
		}, RejectMobility},
		{"mobility match", func(ad *Advertisement, q *Query) {
			mobile := false
			q.RequireMobile = &mobile
		}, Matched},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ad := resourceAgent5()
			q := base.Clone()
			tt.mutate(ad, q)
			if got := Match(w, ad, q); got != tt.want {
				t.Errorf("Match = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestMatchSubclassReasoning(t *testing.T) {
	w := NewWorld(Healthcare())
	ad := resourceAgent5()
	ad.Content[0].Classes = []string{"podiatrist"}
	ad.Content[0].Constraints = nil
	// An agent serving podiatrists answers queries about physicians
	// (every podiatrist is a physician).
	q := &Query{Type: TypeResource, Ontology: "healthcare", Classes: []string{"physician"}}
	if got := Match(w, ad, q); got != Matched {
		t.Errorf("subclass fragment should serve superclass query, got %q", got)
	}
	// But an agent serving physicians in general does not promise
	// podiatrist-specific data.
	ad.Content[0].Classes = []string{"physician"}
	q.Classes = []string{"podiatrist"}
	if got := Match(w, ad, q); got != RejectClass {
		t.Errorf("superclass fragment should not serve subclass query, got %q", got)
	}
}

func TestMatchVerticalFragmentSlots(t *testing.T) {
	w := NewWorld(Generic())
	ad := &Advertisement{
		Name: "vf", Type: TypeResource,
		ContentLanguages: []string{LangSQL2},
		Content: []Fragment{{
			Ontology: "generic",
			Classes:  []string{"C2"},
			Slots:    map[string][]string{"C2": {"id", "a"}},
		}},
	}
	q := &Query{Type: TypeResource, Ontology: "generic", Classes: []string{"C2"}, Slots: []string{"a"}}
	if got := Match(w, ad, q); got != Matched {
		t.Errorf("fragment exposing slot a should match, got %q", got)
	}
	q.Slots = []string{"d"}
	if got := Match(w, ad, q); got != RejectSlot {
		t.Errorf("fragment hiding slot d should reject, got %q", got)
	}
}

func TestSpecificityPrefersSpecialist(t *testing.T) {
	// The paper's MRQ2 example: a new multiresource query agent
	// specializing in class C2 gets a better semantic match than the
	// general-purpose MRQ agent.
	w := NewWorld(Generic())
	general := &Advertisement{
		Name: "MRQ agent", Type: TypeQuery,
		ContentLanguages: []string{LangSQL2},
		Capabilities:     []string{CapMultiresourceQuery},
	}
	specialist := &Advertisement{
		Name: "MRQ2 agent", Type: TypeQuery,
		ContentLanguages: []string{LangSQL2},
		Capabilities:     []string{CapMultiresourceQuery},
		Content: []Fragment{{
			Ontology: "generic",
			Classes:  []string{"C2"},
		}},
	}
	q := &Query{
		Type:            TypeQuery,
		ContentLanguage: LangSQL2,
		Capabilities:    []string{CapMultiresourceQuery},
		Ontology:        "generic",
	}
	// Both match a capability-only query...
	if Match(w, specialist, q) != Matched {
		t.Fatal("specialist should match")
	}
	// ...but with the class named, the specialist scores higher.
	q2 := q.Clone()
	q2.Ontology = "generic"
	q2.Classes = []string{"C2"}
	if Match(w, specialist, q2) != Matched {
		t.Fatal("specialist should match class query")
	}
	sGen := Specificity(w, general, q)
	sSpec := Specificity(w, specialist, q2)
	if sSpec <= sGen {
		t.Errorf("specialist specificity %d should exceed generalist %d", sSpec, sGen)
	}
}

func TestAdvertisementValidate(t *testing.T) {
	tests := []struct {
		name    string
		ad      Advertisement
		wantErr bool
	}{
		{"valid", *resourceAgent5(), false},
		{"missing name", Advertisement{Type: TypeResource}, true},
		{"missing type", Advertisement{Name: "x"}, true},
		{"fragment missing ontology", Advertisement{
			Name: "x", Type: TypeResource,
			Content: []Fragment{{Classes: []string{"a"}}},
		}, true},
		{"fragment missing classes", Advertisement{
			Name: "x", Type: TypeResource,
			Content: []Fragment{{Ontology: "o"}},
		}, true},
		{"broker without broker info", Advertisement{Name: "b", Type: TypeBroker}, true},
		{"broker with broker info", Advertisement{
			Name: "b", Type: TypeBroker, Broker: &BrokerInfo{},
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.ad.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAdvertisementCloneIndependent(t *testing.T) {
	ad := resourceAgent5()
	cp := ad.Clone()
	cp.Capabilities[0] = "mutated"
	cp.Content[0].Classes[0] = "mutated"
	cp.Content[0].Constraints.Add(constraint.Atom{Field: "x", Interval: constraint.Exactly(1)})
	if ad.Capabilities[0] == "mutated" {
		t.Error("clone shares capabilities slice")
	}
	if ad.Content[0].Classes[0] == "mutated" {
		t.Error("clone shares classes slice")
	}
	if ad.Content[0].Constraints.Len() != 1 {
		t.Error("clone shares constraint set")
	}
}

func TestQueryValidate(t *testing.T) {
	q := &Query{Classes: []string{"C2"}}
	if err := q.Validate(); err == nil {
		t.Error("classes without ontology should be invalid")
	}
	q = &Query{Limit: -1}
	if err := q.Validate(); err == nil {
		t.Error("negative limit should be invalid")
	}
	q = &Query{Constraints: constraint.NewSet(
		constraint.Atom{Field: "x", Interval: constraint.NewRange(2, 1)})}
	if err := q.Validate(); err == nil {
		t.Error("unsatisfiable constraints should be invalid")
	}
}

func TestFollowOptionString(t *testing.T) {
	if FollowLocal.String() != "local" || FollowAll.String() != "all" || FollowUntilMatch.String() != "until-match" {
		t.Error("follow option names wrong")
	}
}

func TestGenericOntology(t *testing.T) {
	o := Generic()
	if !o.IsSubclassOf("C2a", "C2") || !o.IsSubclassOf("C2b", "C2") {
		t.Error("C2a/C2b should be subclasses of C2")
	}
	slots := o.SlotsOf("C2a")
	found := false
	for _, s := range slots {
		if s == "e" {
			found = true
		}
	}
	if !found {
		t.Errorf("C2a should expose own slot e, got %v", slots)
	}
}
