package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Standard capability names from the paper's Figure 2 hierarchy and the
// Section 2.4 advertisement example. Capability names are free-form
// strings; these constants cover the vocabulary used throughout the
// reproduction.
const (
	CapQueryProcessing           = "query processing"
	CapRelationalQueryProcessing = "relational query processing"
	CapOOQueryProcessing         = "object-oriented query processing"
	CapSelect                    = "select"
	CapProject                   = "project"
	CapJoin                      = "join"
	CapUnion                     = "union"
	CapSubscription              = "subscription"
	CapMultiresourceQuery        = "multiresource query processing"
	CapDataMining                = "data mining"
	CapBrokering                 = "brokering"
	// CapAggregation is statistical aggregation within queries — the
	// paper's canonical capability restriction ("it cannot do any
	// statistical aggregation within those queries").
	CapAggregation = "statistical aggregation"
)

// CapabilityHierarchy is the containment hierarchy over capabilities
// (Figure 2): an agent advertising a capability implicitly offers every
// capability below it, but not the ones above. It is a DAG: a capability
// may have several parents.
type CapabilityHierarchy struct {
	// parents maps a capability to its direct parents.
	parents map[string][]string
}

// NewCapabilityHierarchy returns an empty hierarchy.
func NewCapabilityHierarchy() *CapabilityHierarchy {
	return &CapabilityHierarchy{parents: make(map[string][]string)}
}

// Add declares that parent directly contains child. Both nodes are created
// if absent. It returns an error if the edge would create a cycle.
func (h *CapabilityHierarchy) Add(parent, child string) error {
	parent, child = normCap(parent), normCap(child)
	if parent == child {
		return fmt.Errorf("capability %q cannot contain itself", parent)
	}
	if h.Subsumes(child, parent) {
		return fmt.Errorf("adding %q under %q would create a cycle", child, parent)
	}
	h.touch(parent)
	h.touch(child)
	for _, p := range h.parents[child] {
		if p == parent {
			return nil
		}
	}
	h.parents[child] = append(h.parents[child], parent)
	return nil
}

// MustAdd is Add, panicking on error; for static hierarchy tables.
func (h *CapabilityHierarchy) MustAdd(parent, child string) {
	if err := h.Add(parent, child); err != nil {
		panic(err)
	}
}

func (h *CapabilityHierarchy) touch(name string) {
	if _, ok := h.parents[name]; !ok {
		h.parents[name] = nil
	}
}

// Known reports whether the capability appears in the hierarchy.
func (h *CapabilityHierarchy) Known(name string) bool {
	_, ok := h.parents[normCap(name)]
	return ok
}

// Subsumes reports whether general is specific, or transitively contains
// specific: an agent advertising `general` can perform `specific`. A
// capability absent from the hierarchy subsumes only itself.
func (h *CapabilityHierarchy) Subsumes(general, specific string) bool {
	general, specific = normCap(general), normCap(specific)
	if general == specific {
		return true
	}
	// Walk up from specific looking for general.
	seen := make(map[string]bool)
	stack := []string{specific}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for _, p := range h.parents[cur] {
			if p == general {
				return true
			}
			stack = append(stack, p)
		}
	}
	return false
}

// Satisfies reports whether an agent advertising the given capabilities can
// perform the requested one: some advertised capability must subsume the
// request. The paper's example: advertising "query processing" satisfies a
// request for "select", but advertising "select" does not satisfy a request
// for "relational query processing".
func (h *CapabilityHierarchy) Satisfies(advertised []string, requested string) bool {
	for _, adv := range advertised {
		if h.Subsumes(adv, requested) {
			return true
		}
	}
	return false
}

// Descendants returns every capability transitively contained by the given
// one, in sorted order, excluding the capability itself.
func (h *CapabilityHierarchy) Descendants(name string) []string {
	name = normCap(name)
	var out []string
	for c := range h.parents {
		if c != name && h.Subsumes(name, c) {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Capabilities returns every known capability in sorted order.
func (h *CapabilityHierarchy) Capabilities() []string {
	out := make([]string, 0, len(h.parents))
	for c := range h.parents {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func normCap(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// DefaultHierarchy returns the Figure 2 capability hierarchy for query
// processing, extended with the other capabilities the paper's agents
// advertise (subscription, multiresource query processing, brokering,
// data mining).
func DefaultHierarchy() *CapabilityHierarchy {
	h := NewCapabilityHierarchy()
	h.MustAdd(CapQueryProcessing, CapRelationalQueryProcessing)
	h.MustAdd(CapQueryProcessing, CapOOQueryProcessing)
	h.MustAdd(CapRelationalQueryProcessing, CapSelect)
	h.MustAdd(CapRelationalQueryProcessing, CapProject)
	h.MustAdd(CapRelationalQueryProcessing, CapJoin)
	h.MustAdd(CapRelationalQueryProcessing, CapUnion)
	h.MustAdd(CapQueryProcessing, CapMultiresourceQuery)
	h.MustAdd(CapQueryProcessing, CapAggregation)
	h.touch(CapSubscription)
	h.touch(CapDataMining)
	h.touch(CapBrokering)
	return h
}
