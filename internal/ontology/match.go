package ontology

import (
	"fmt"
	"strings"

	"infosleuth/internal/constraint"
)

// FollowOption controls how far an inter-broker search propagates
// (Section 4.3, modeled on the CORBA trading service's follow policy).
type FollowOption int

// Follow options.
const (
	// FollowLocal considers only the receiving broker's own repository.
	FollowLocal FollowOption = iota
	// FollowAll considers all reachable repositories.
	FollowAll
	// FollowUntilMatch expands the search only until a single match is
	// found.
	FollowUntilMatch
)

// String names the follow option.
func (f FollowOption) String() string {
	switch f {
	case FollowLocal:
		return "local"
	case FollowAll:
		return "all"
	case FollowUntilMatch:
		return "until-match"
	default:
		return fmt.Sprintf("follow(%d)", int(f))
	}
}

// SearchPolicy is the requesting agent's inter-broker search policy
// property list (Section 4.3): how many broker hops a request may traverse
// and which repositories to consult.
type SearchPolicy struct {
	// HopCount is the maximum number of hops between brokers the request
	// will traverse. 0 means use the broker's default (1 — the broker's
	// own consortium and directly connected brokers).
	HopCount int
	// Follow selects which repositories to consult.
	Follow FollowOption
}

// DefaultPolicy is applied when the requesting agent specifies none: one
// hop, all repositories.
var DefaultPolicy = SearchPolicy{HopCount: 1, Follow: FollowAll}

// Query is a broker query: a partially-specified advertisement pattern plus
// result controls (the ask-all content of Section 2.4). Zero-valued fields
// are "don't care" — the paper's "?variables".
type Query struct {
	// Type restricts the agent type (e.g. only resource agents).
	Type AgentType
	// ContentLanguage requires an agent accepting this query language
	// (syntactic knowledge — "SQL 2.0").
	ContentLanguage string
	// CommLanguage requires an agent speaking this ACL (e.g. "KQML").
	CommLanguage string
	// Conversations require supported conversation types (e.g. ask-all).
	Conversations []string
	// Capabilities require semantic capabilities; each must be satisfied
	// by some advertised capability under the hierarchy.
	Capabilities []string
	// Ontology restricts content to agents supporting this domain model.
	Ontology string
	// Classes require the agent to serve these ontology classes
	// (subclass-aware: an agent serving a subclass matches).
	Classes []string
	// Slots require the listed slots to be visible on some served class.
	Slots []string
	// Constraints describe the data of interest; the agent's advertised
	// constraints must overlap them.
	Constraints *constraint.Set
	// MaxResponseSec, when positive, excludes agents advertising a larger
	// estimated response time.
	MaxResponseSec float64
	// RequireMobile, when non-nil, requires the agent's mobility to equal
	// the value.
	RequireMobile *bool
	// Limit caps the number of recommendations; 0 means all matches.
	Limit int
	// Policy is the inter-broker search policy.
	Policy SearchPolicy
}

// Validate checks that the query is internally consistent.
func (q *Query) Validate() error {
	if q.Constraints.Unsatisfiable() {
		return fmt.Errorf("query constraints are unsatisfiable: %s", q.Constraints)
	}
	if q.Limit < 0 {
		return fmt.Errorf("query limit must be non-negative, got %d", q.Limit)
	}
	if len(q.Classes) > 0 && q.Ontology == "" {
		return fmt.Errorf("query names classes %v but no ontology", q.Classes)
	}
	return nil
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	cp := *q
	cp.Conversations = append([]string(nil), q.Conversations...)
	cp.Capabilities = append([]string(nil), q.Capabilities...)
	cp.Classes = append([]string(nil), q.Classes...)
	cp.Slots = append([]string(nil), q.Slots...)
	cp.Constraints = q.Constraints.Clone()
	if q.RequireMobile != nil {
		v := *q.RequireMobile
		cp.RequireMobile = &v
	}
	return &cp
}

// String renders a one-line summary of the query for logs.
func (q *Query) String() string {
	var parts []string
	if q.Type != TypeAny {
		parts = append(parts, "type="+string(q.Type))
	}
	if q.ContentLanguage != "" {
		parts = append(parts, "lang="+q.ContentLanguage)
	}
	if len(q.Capabilities) > 0 {
		parts = append(parts, "caps="+strings.Join(q.Capabilities, "+"))
	}
	if q.Ontology != "" {
		parts = append(parts, "ontology="+q.Ontology)
	}
	if len(q.Classes) > 0 {
		parts = append(parts, "classes="+strings.Join(q.Classes, "+"))
	}
	if q.Constraints.Len() > 0 {
		parts = append(parts, "where "+q.Constraints.String())
	}
	if len(parts) == 0 {
		return "query(any)"
	}
	return "query(" + strings.Join(parts, " ") + ")"
}

// World is the shared knowledge a matcher reasons with: the capability
// hierarchy and the domain ontologies. A nil World matches with exact
// string equality only (no subsumption reasoning).
type World struct {
	Capabilities *CapabilityHierarchy
	Ontologies   map[string]*Ontology
}

// NewWorld returns a World with the default capability hierarchy and the
// given domain ontologies.
func NewWorld(onts ...*Ontology) *World {
	w := &World{
		Capabilities: DefaultHierarchy(),
		Ontologies:   make(map[string]*Ontology),
	}
	for _, o := range onts {
		w.Ontologies[o.Name] = o
	}
	return w
}

// Ontology returns a domain ontology by name, or nil.
func (w *World) Ontology(name string) *Ontology {
	if w == nil {
		return nil
	}
	return w.Ontologies[name]
}

// MatchReason explains why an advertisement was rejected; empty means it
// matched.
type MatchReason string

// Rejection reasons, ordered from syntactic to semantic — useful in logs
// and asserted by tests.
const (
	Matched            MatchReason = ""
	RejectType         MatchReason = "agent type mismatch"
	RejectCommLanguage MatchReason = "communication language mismatch"
	RejectContentLang  MatchReason = "content language mismatch"
	RejectConversation MatchReason = "conversation type not supported"
	RejectCapability   MatchReason = "capability not satisfied"
	RejectOntology     MatchReason = "ontology not supported"
	RejectClass        MatchReason = "class not served"
	RejectSlot         MatchReason = "slot not visible"
	RejectConstraints  MatchReason = "data constraints do not overlap"
	RejectResponseTime MatchReason = "estimated response time too high"
	RejectMobility     MatchReason = "mobility requirement not met"
)

// Match reports whether an advertisement satisfies a query, combining the
// syntactic and semantic brokering of Section 2.3. It returns the first
// rejection reason, or Matched. This is the reference implementation of the
// brokering relation; the broker's Datalog engine implements the same
// relation and the two are cross-checked in tests.
func Match(w *World, ad *Advertisement, q *Query) MatchReason {
	// Syntactic brokering: type, languages, conversations.
	if q.Type != TypeAny && ad.Type != q.Type {
		return RejectType
	}
	if q.CommLanguage != "" && !containsFold(ad.CommLanguages, q.CommLanguage) {
		return RejectCommLanguage
	}
	if q.ContentLanguage != "" && !containsFold(ad.ContentLanguages, q.ContentLanguage) {
		return RejectContentLang
	}
	for _, conv := range q.Conversations {
		if !containsFold(ad.Conversations, conv) {
			return RejectConversation
		}
	}

	// Semantic brokering: capabilities under the containment hierarchy.
	for _, cap := range q.Capabilities {
		if !satisfiesCapability(w, ad.Capabilities, cap) {
			return RejectCapability
		}
	}

	// Semantic brokering: content (ontology, classes, slots, constraints).
	if q.Ontology != "" {
		frags := fragmentsFor(ad, q.Ontology)
		if len(frags) == 0 {
			return RejectOntology
		}
		ont := w.Ontology(q.Ontology)
		for _, class := range q.Classes {
			if !anyFragmentServesClass(frags, class, ont) {
				return RejectClass
			}
		}
		for _, slot := range q.Slots {
			if !anyFragmentExposesSlot(frags, slot, ont) {
				return RejectSlot
			}
		}
		if q.Constraints.Len() > 0 {
			overlap := false
			for _, f := range frags {
				if f.Constraints.Overlaps(q.Constraints) {
					overlap = true
					break
				}
			}
			if !overlap {
				return RejectConstraints
			}
		}
	}

	// Pragmatic properties.
	if q.MaxResponseSec > 0 && ad.Properties.EstimatedResponseSec > q.MaxResponseSec {
		return RejectResponseTime
	}
	if q.RequireMobile != nil && ad.Properties.Mobile != *q.RequireMobile {
		return RejectMobility
	}
	return Matched
}

// Specificity scores how narrowly an advertisement fits a query; among
// matching agents, higher is a better semantic match. The paper's MRQ2
// example: an agent specializing in exactly the requested class C2 is
// recommended over a general-purpose one. One point per requested class
// served directly (not via hierarchy), one per requested capability
// advertised below the hierarchy root, and one if advertised constraints
// are covered by the query's (the agent holds only relevant data).
func Specificity(w *World, ad *Advertisement, q *Query) int {
	score := 0
	if q.Ontology != "" {
		frags := fragmentsFor(ad, q.Ontology)
		for _, class := range q.Classes {
			for _, f := range frags {
				if f.HasClass(class) {
					score++
					break
				}
			}
		}
		if q.Constraints.Len() > 0 {
			for _, f := range frags {
				if f.Constraints.Len() > 0 && q.Constraints.Covers(f.Constraints) {
					score++
					break
				}
			}
		}
	}
	for _, cap := range q.Capabilities {
		if containsFold(ad.Capabilities, cap) {
			score++
		}
	}
	return score
}

func satisfiesCapability(w *World, advertised []string, requested string) bool {
	if w != nil && w.Capabilities != nil {
		return w.Capabilities.Satisfies(advertised, requested)
	}
	return containsFold(advertised, requested)
}

func fragmentsFor(ad *Advertisement, ontologyName string) []*Fragment {
	var out []*Fragment
	for i := range ad.Content {
		if strings.EqualFold(ad.Content[i].Ontology, ontologyName) {
			out = append(out, &ad.Content[i])
		}
	}
	return out
}

// anyFragmentServesClass checks class service with subclass reasoning: a
// fragment serving class C answers queries about C and about any superclass
// of C (its instances are instances of the superclass).
func anyFragmentServesClass(frags []*Fragment, class string, ont *Ontology) bool {
	for _, f := range frags {
		if f.HasClass(class) {
			return true
		}
		if ont != nil {
			for _, served := range f.Classes {
				if ont.IsSubclassOf(served, class) {
					return true
				}
			}
		}
	}
	return false
}

func anyFragmentExposesSlot(frags []*Fragment, slot string, ont *Ontology) bool {
	for _, f := range frags {
		for _, class := range f.Classes {
			for _, s := range f.SlotsFor(class, ont) {
				if strings.EqualFold(s, slot) {
					return true
				}
			}
		}
	}
	return false
}

func containsFold(haystack []string, needle string) bool {
	for _, h := range haystack {
		if strings.EqualFold(h, needle) {
			return true
		}
	}
	return false
}
