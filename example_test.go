package infosleuth_test

import (
	"context"
	"fmt"

	"infosleuth"
)

// ExampleParseConstraint shows the paper's Section 2.4 constraint overlap:
// an advertisement for patients aged 43-75 matches a request for patients
// aged 25-65 with diagnosis code 40W.
func ExampleParseConstraint() {
	ad := infosleuth.MustParseConstraint("patient.patient_age between 43 and 75")
	query := infosleuth.MustParseConstraint(
		"(patient.patient_age between 25 and 65) AND (patient.diagnosis_code = '40W')")
	fmt.Println("overlaps:", ad.Overlaps(query))

	tooOld := infosleuth.MustParseConstraint("patient.patient_age >= 80")
	fmt.Println("overlaps:", tooOld.Overlaps(query))
	// Output:
	// overlaps: true
	// overlaps: false
}

// ExampleMatch runs the broker's matchmaking relation directly over the
// paper's ResourceAgent5 advertisement.
func ExampleMatch() {
	world := infosleuth.NewWorld(infosleuth.HealthcareOntology())
	ad := &infosleuth.Advertisement{
		Name:             "ResourceAgent5",
		Address:          "tcp://b1.mcc.com:4356",
		Type:             infosleuth.TypeResource,
		CommLanguages:    []string{"KQML"},
		ContentLanguages: []string{"SQL 2.0"},
		Conversations:    []string{"subscribe", "update", "ask-all"},
		Capabilities:     []string{"relational query processing", "subscription"},
		Content: []infosleuth.Fragment{{
			Ontology:    "healthcare",
			Classes:     []string{"diagnosis", "patient"},
			Constraints: infosleuth.MustParseConstraint("patient.patient_age between 43 and 75"),
		}},
		Properties: infosleuth.Properties{EstimatedResponseSec: 5},
	}
	q := &infosleuth.Query{
		Type:            infosleuth.TypeResource,
		ContentLanguage: "SQL 2.0",
		Ontology:        "healthcare",
		Constraints: infosleuth.MustParseConstraint(
			"(patient.patient_age between 25 and 65) AND (patient.diagnosis_code = '40W')"),
	}
	fmt.Println("match:", infosleuth.Match(world, ad, q) == "")

	// An agent advertising only "select" cannot satisfy a request for
	// full relational query processing (the Figure 2 hierarchy).
	q2 := &infosleuth.Query{Capabilities: []string{"query processing"}}
	fmt.Println("generalist request vs specialist ad:", infosleuth.Match(world, ad, q2) == "")
	// Output:
	// match: true
	// generalist request vs specialist ad: false
}

// ExampleCommunity wires the smallest useful community: one broker, one
// resource, one MRQ agent, one user — the Figures 5-7 pipeline.
func ExampleCommunity() {
	ctx := context.Background()
	c, err := infosleuth.NewCommunity(infosleuth.CommunityConfig{Brokers: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer c.Close()

	db := infosleuth.NewDatabase()
	tbl, _ := db.Create(infosleuth.Schema{
		Name: "C2",
		Columns: []infosleuth.Column{
			{Name: "id", Type: infosleuth.TypeString},
			{Name: "a", Type: infosleuth.TypeNumber},
		},
		Key: "id",
	})
	for i := 0; i < 3; i++ {
		tbl.Insert(infosleuth.Row{
			infosleuth.Str(fmt.Sprintf("k%d", i)), infosleuth.Num(float64(i * 10)),
		})
	}
	c.AddResource(ctx, infosleuth.ResourceSpec{
		Name: "DB1 resource agent", DB: db,
		Fragment: infosleuth.Fragment{Ontology: "generic", Classes: []string{"C2"}},
	})
	c.AddMRQ(ctx, "MRQ agent", "generic")
	user, _ := c.AddUser(ctx, "mhn's user agent", "generic")

	res, err := user.Submit(ctx, "SELECT id, a FROM C2 WHERE a >= 10 ORDER BY id")
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range res.Rows {
		fmt.Println(row[0].Text(), row[1].Number())
	}
	// Output:
	// k1 10
	// k2 20
}

// ExampleRunSimulation runs one deterministic pass of the Section 5.2
// simulator.
func ExampleRunSimulation() {
	m := infosleuth.RunSimulation(infosleuth.SimConfig{
		Seed:                 42,
		Brokers:              4,
		Resources:            16,
		Strategy:             infosleuth.SimSpecialized,
		MeanQueryIntervalSec: 120,
		DurationSec:          3600,
		UniqueDomains:        true,
	})
	fmt.Println("all queries answered:", m.ReplyRate() > 0.9)
	fmt.Println("every answer complete:", m.SuccessRate() == 1.0)
	// Output:
	// all queries answered: true
	// every answer complete: true
}

// ExampleParseSQL shows the SQL-subset capability analysis used for
// capability-restricted agents.
func ExampleParseSQL() {
	stmt, _ := infosleuth.ParseSQL("SELECT region, COUNT(*) FROM patient WHERE patient_age > 40 GROUP BY region")
	fmt.Println(stmt.Capabilities())
	fmt.Println(stmt.Tables())
	// Output:
	// [select project statistical aggregation]
	// [patient]
}
